// Provider-parity suite: every available GEMM provider x every kernel on
// ragged M/N/K shapes, including K not a multiple of the 32-byte SIMD width
// (exercises the vector tails) and group sizes that leave ragged register
// groups (exercises the scalar tail of the fused LUT dequant).
//
// Integer kernels (W8A8, W4A8 LQQ/QServe/DualMma) must match the reference
// provider bit-for-bit: INT32 accumulation is associative and the float
// epilogue expression is identical across providers.  Float kernels (fp32,
// fp16, W4A16) differ only by accumulation order, so they are held to a tight
// relative-Frobenius tolerance.

#include "core/gemm/gemm.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace liquid {
namespace {

// Accumulation-order-only differences on K <= 512 Gaussian dots.
constexpr double kTolReorderFp32 = 1e-5;
constexpr double kTolReorderFp16 = 1e-4;

struct Problem {
  MatrixF x;
  MatrixF w;
  QuantizedActivations xq;
};

Problem MakeProblem(std::size_t m, std::size_t n, std::size_t k,
                    std::uint64_t seed) {
  Rng rng(seed);
  Problem p{MatrixF(m, k), MatrixF(n, k), {}};
  for (auto& v : p.x.Flat()) v = static_cast<float>(rng.Normal(0, 1.0));
  for (auto& v : p.w.Flat()) v = static_cast<float>(rng.Normal(0, 0.05));
  p.xq = QuantizeActivationsPerToken(p.x);
  return p;
}

/// Restores the process-wide provider override on scope exit.
class ProviderGuard {
 public:
  ProviderGuard() = default;
  ~ProviderGuard() { SetGemmProvider(GemmProvider::kAuto); }
};

void ExpectBitIdentical(const MatrixF& ref, const MatrixF& got,
                        GemmProvider p, const char* kernel) {
  ASSERT_EQ(ref.rows(), got.rows());
  ASSERT_EQ(ref.cols(), got.cols());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(ref.Flat()[i], got.Flat()[i])
        << kernel << " provider=" << GemmProviderName(p) << " flat index " << i;
  }
}

TEST(GemmProviderTest, NamesRoundTrip) {
  for (GemmProvider p : {GemmProvider::kAuto, GemmProvider::kReference,
                         GemmProvider::kPortable, GemmProvider::kAvx2}) {
    GemmProvider parsed = GemmProvider::kAuto;
    EXPECT_TRUE(ParseGemmProvider(GemmProviderName(p), &parsed));
    EXPECT_EQ(parsed, p);
  }
  GemmProvider parsed = GemmProvider::kAuto;
  EXPECT_TRUE(ParseGemmProvider("AVX2", &parsed));  // case-insensitive
  EXPECT_EQ(parsed, GemmProvider::kAvx2);
  EXPECT_FALSE(ParseGemmProvider("bogus", &parsed));
}

TEST(GemmProviderTest, ReferenceAndPortableAlwaysAvailable) {
  EXPECT_TRUE(GemmProviderAvailable(GemmProvider::kReference));
  EXPECT_TRUE(GemmProviderAvailable(GemmProvider::kPortable));
  const auto providers = AvailableGemmProviders();
  EXPECT_GE(providers.size(), 2u);
  // The active provider must itself be available (never kAuto).
  EXPECT_NE(ActiveGemmProvider(), GemmProvider::kAuto);
  EXPECT_TRUE(GemmProviderAvailable(ActiveGemmProvider()));
}

TEST(GemmProviderTest, UnavailableProviderThrows) {
  if (GemmProviderAvailable(GemmProvider::kAvx2)) {
    GTEST_SKIP() << "AVX2 available here; nothing is unavailable to test";
  }
  const Problem p = MakeProblem(2, 4, 64, 1);
  const auto wq = QuantizeWeightsW8A8(p.w);
  EXPECT_THROW(GemmW8A8(p.xq, wq, GemmProvider::kAvx2), std::invalid_argument);
  EXPECT_THROW(SetGemmProvider(GemmProvider::kAvx2), std::invalid_argument);
}

TEST(GemmProviderTest, ForcedFallbackMatchesReference) {
  // Simulates LIQUID_GEMM_PROVIDER=portable: the default-argument call path
  // must route through the portable provider and stay bit-identical on the
  // integer kernels.
  const Problem p = MakeProblem(5, 33, 192, 2);
  const LqqWeights wq = QuantizeWeightsLqq(p.w);
  const MatrixF ref = GemmW4A8Liquid(p.xq, wq, GemmProvider::kReference);
  ProviderGuard guard;
  SetGemmProvider(GemmProvider::kPortable);
  EXPECT_EQ(ActiveGemmProvider(), GemmProvider::kPortable);
  const MatrixF got = GemmW4A8Liquid(p.xq, wq);  // default = active provider
  ExpectBitIdentical(ref, got, GemmProvider::kPortable, "W4A8Liquid");
}

// ---------------------------------------------------------------------------
// Parity sweeps: one fixture instantiated per available provider.
// ---------------------------------------------------------------------------

class ProviderParity : public ::testing::TestWithParam<GemmProvider> {};

TEST_P(ProviderParity, W8A8ExactOnRaggedShapes) {
  const GemmProvider provider = GetParam();
  const struct { std::size_t m, n, k; } shapes[] = {
      {1, 7, 37},    // K < one SIMD chunk, scalar tail only
      {3, 5, 64},    //
      {16, 33, 70},  // K and N both ragged vs the 32/4-wide blocks
      {2, 4, 33},    // K one past a chunk boundary
  };
  for (const auto& s : shapes) {
    const Problem p = MakeProblem(s.m, s.n, s.k, 10 + s.k);
    const auto wq = QuantizeWeightsW8A8(p.w);
    const MatrixF ref = GemmW8A8(p.xq, wq, GemmProvider::kReference);
    const MatrixF got = GemmW8A8(p.xq, wq, provider);
    ExpectBitIdentical(ref, got, provider, "W8A8");
  }
}

TEST_P(ProviderParity, W4A8LiquidExactOnRaggedShapes) {
  const GemmProvider provider = GetParam();
  const struct { std::size_t m, n, k, group; } shapes[] = {
      {1, 5, 40, 8},     // 5 registers: below the 8-register vector chunk
      {3, 33, 72, 8},    // 9 registers per group boundary: vector + tail
      {16, 7, 96, 16},   //
      {4, 12, 128, 64},  // paper-default group, one vector chunk per group
      {2, 3, 320, 64},   // several chunks per row
  };
  for (const auto& s : shapes) {
    const Problem p = MakeProblem(s.m, s.n, s.k, 20 + s.k + s.group);
    const LqqWeights wq = QuantizeWeightsLqq(p.w, {s.group});
    const MatrixF ref = GemmW4A8Liquid(p.xq, wq, GemmProvider::kReference);
    const MatrixF got = GemmW4A8Liquid(p.xq, wq, provider);
    ExpectBitIdentical(ref, got, provider, "W4A8Liquid");
  }
}

TEST_P(ProviderParity, W4A8QserveExactOnRaggedShapes) {
  const GemmProvider provider = GetParam();
  const struct { std::size_t m, n, k, group; } shapes[] = {
      {1, 5, 40, 8},
      {3, 33, 72, 24},   // 3 registers per group: pure scalar-tail groups
      {16, 7, 96, 16},
      {4, 12, 256, 128},  // QServe-default group
  };
  for (const auto& s : shapes) {
    const Problem p = MakeProblem(s.m, s.n, s.k, 30 + s.k + s.group);
    const QserveWeights wq = QuantizeWeightsQserve(p.w, {s.group});
    const MatrixF ref = GemmW4A8Qserve(p.xq, wq, GemmProvider::kReference);
    const MatrixF got = GemmW4A8Qserve(p.xq, wq, provider);
    ExpectBitIdentical(ref, got, provider, "W4A8Qserve");
  }
}

TEST_P(ProviderParity, W4A8DualMmaExactAndMatchesLinearPath) {
  const GemmProvider provider = GetParam();
  const struct { std::size_t m, n, k; } shapes[] = {
      {3, 64, 128},
      {1, 128, 64},
      {8, 128, 256},
  };
  for (const auto& s : shapes) {
    const Problem p = MakeProblem(s.m, s.n, s.k, 40 + s.n + s.k);
    const LqqWeights wq = QuantizeWeightsLqq(p.w);
    const DualMmaPackedWeights packed = PackDualMma(wq);
    const MatrixF ref =
        GemmW4A8LiquidDualMma(p.xq, packed, GemmProvider::kReference);
    const MatrixF got = GemmW4A8LiquidDualMma(p.xq, packed, provider);
    ExpectBitIdentical(ref, got, provider, "W4A8DualMma");
    // The layout proof must hold per provider too: supertile order computes
    // the same GEMM as linear register order.
    const MatrixF linear = GemmW4A8Liquid(p.xq, wq, provider);
    ExpectBitIdentical(linear, got, provider, "W4A8DualMma-vs-linear");
  }
}

TEST_P(ProviderParity, Fp32WithinReorderTolerance) {
  const GemmProvider provider = GetParam();
  const struct { std::size_t m, n, k; } shapes[] = {
      {1, 3, 17}, {5, 9, 130}, {16, 33, 512},
  };
  for (const auto& s : shapes) {
    const Problem p = MakeProblem(s.m, s.n, s.k, 50 + s.k);
    const MatrixF ref = GemmReference(p.x, p.w, GemmProvider::kReference);
    const MatrixF got = GemmReference(p.x, p.w, provider);
    EXPECT_LT(RelativeFrobeniusError(ref.Flat(), got.Flat()), kTolReorderFp32)
        << "provider=" << GemmProviderName(provider) << " k=" << s.k;
  }
}

TEST_P(ProviderParity, Fp16WithinReorderTolerance) {
  const GemmProvider provider = GetParam();
  const Problem p = MakeProblem(6, 19, 190, 60);
  const MatrixF ref = GemmFp16(p.x, p.w, GemmProvider::kReference);
  const MatrixF got = GemmFp16(p.x, p.w, provider);
  EXPECT_LT(RelativeFrobeniusError(ref.Flat(), got.Flat()), kTolReorderFp16)
      << "provider=" << GemmProviderName(provider);
}

TEST_P(ProviderParity, W4A16WithinReorderTolerance) {
  const GemmProvider provider = GetParam();
  const struct { std::size_t m, n, k, group; } shapes[] = {
      {3, 5, 36, 6},     // ragged K, tiny group
      {8, 17, 256, 128},
  };
  for (const auto& s : shapes) {
    const Problem p = MakeProblem(s.m, s.n, s.k, 70 + s.k);
    const W4A16Weights wq = QuantizeWeightsW4A16(p.w, s.group);
    const MatrixF ref = GemmW4A16(p.x, wq, GemmProvider::kReference);
    const MatrixF got = GemmW4A16(p.x, wq, provider);
    EXPECT_LT(RelativeFrobeniusError(ref.Flat(), got.Flat()), kTolReorderFp16)
        << "provider=" << GemmProviderName(provider) << " k=" << s.k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProviders, ProviderParity,
    ::testing::ValuesIn(AvailableGemmProviders()),
    // Not named `info`: INSTANTIATE_TEST_SUITE_P expands to a function whose
    // parameter is already called that, and -Wshadow flags the collision.
    [](const ::testing::TestParamInfo<GemmProvider>& param_info) {
      return std::string(GemmProviderName(param_info.param));
    });

}  // namespace
}  // namespace liquid
