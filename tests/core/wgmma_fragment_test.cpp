// Tests for the WGMMA m64k32 fragment geometry (paper Figure 7a).

#include "core/layout/wgmma_fragment.hpp"

#include <gtest/gtest.h>

#include <set>

namespace liquid {
namespace {

TEST(WgmmaFragmentTest, CoordsInBounds) {
  for (int t = 0; t < kWgThreads; ++t) {
    for (int e = 0; e < kElemsPerThread; ++e) {
      const FragCoord c = WgmmaFragmentCoord(t, e);
      EXPECT_GE(c.row, 0);
      EXPECT_LT(c.row, kFragRows);
      EXPECT_GE(c.col, 0);
      EXPECT_LT(c.col, kFragCols);
    }
  }
}

TEST(WgmmaFragmentTest, FragmentIsAPartition) {
  // The 128 threads x 16 elements exactly tile the 64x32 fragment: every
  // coordinate owned once, none twice, none missed.
  std::set<std::pair<int, int>> seen;
  for (int t = 0; t < kWgThreads; ++t) {
    for (int e = 0; e < kElemsPerThread; ++e) {
      const FragCoord c = WgmmaFragmentCoord(t, e);
      EXPECT_TRUE(seen.insert({c.row, c.col}).second)
          << "duplicate (" << c.row << "," << c.col << ")";
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kFragRows * kFragCols));
}

TEST(WgmmaFragmentTest, WarpOwnsSixteenRowSlab) {
  for (int t = 0; t < kWgThreads; ++t) {
    const int warp = t / 32;
    for (int e = 0; e < kElemsPerThread; ++e) {
      const FragCoord c = WgmmaFragmentCoord(t, e);
      EXPECT_GE(c.row, 16 * warp);
      EXPECT_LT(c.row, 16 * (warp + 1));
    }
  }
}

TEST(WgmmaFragmentTest, VectorsAreContiguousInK) {
  // Each 4-element vector covers 4 consecutive k columns in one row —
  // the property the packed-register unpack relies on.
  for (int t = 0; t < kWgThreads; ++t) {
    for (int vec = 0; vec < kVectorsPerThread; ++vec) {
      const FragCoord first = WgmmaFragmentCoord(t, vec * 4);
      for (int j = 1; j < 4; ++j) {
        const FragCoord c = WgmmaFragmentCoord(t, vec * 4 + j);
        EXPECT_EQ(c.row, first.row);
        EXPECT_EQ(c.col, first.col + j);
      }
    }
  }
}

TEST(WgmmaFragmentTest, ThreadQuadPattern) {
  // Lanes 0..3 of warp 0 sit in row 0 (Figure 7a's T0 T1 T2 T3 top row).
  for (int lane = 0; lane < 4; ++lane) {
    EXPECT_EQ(WgmmaFragmentCoord(lane, 0).row, 0);
    EXPECT_EQ(WgmmaFragmentCoord(lane, 0).col, 4 * lane);
  }
  // Lane 4 starts row 1.
  EXPECT_EQ(WgmmaFragmentCoord(4, 0).row, 1);
}

}  // namespace
}  // namespace liquid
