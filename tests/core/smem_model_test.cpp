// Tests for the shared-memory transaction model (paper Section 5.2): the
// dual-MMA packed layout is conflict-free and fully utilized; the
// conventional layout wastes bandwidth, issues more instructions, and
// conflicts; ldmatrix on UINT4 misdelivers.

#include "core/layout/smem_model.hpp"

#include <gtest/gtest.h>

#include <array>

namespace liquid {
namespace {

std::array<std::uint64_t, 32> Addrs(std::uint64_t base, std::uint64_t stride) {
  std::array<std::uint64_t, 32> a{};
  for (int i = 0; i < 32; ++i) {
    a[static_cast<std::size_t>(i)] = base + stride * static_cast<std::uint64_t>(i);
  }
  return a;
}

TEST(SmemModelTest, ContiguousLds128IsConflictFree) {
  const auto addrs = Addrs(0, 16);
  const SmemAccessReport r =
      AnalyzeWarpLoad(addrs, LdsWidth::kLds128, 16);
  EXPECT_EQ(r.memory_cycles, 4);  // one cycle per 8-thread phase
  EXPECT_EQ(r.min_cycles, 4);
  EXPECT_DOUBLE_EQ(r.ConflictFactor(), 1.0);
  EXPECT_DOUBLE_EQ(r.BandwidthEfficiency(), 1.0);
}

TEST(SmemModelTest, ContiguousLds32IsConflictFree) {
  const auto addrs = Addrs(0, 4);
  const SmemAccessReport r = AnalyzeWarpLoad(addrs, LdsWidth::kLds32, 4);
  EXPECT_EQ(r.memory_cycles, 1);
  EXPECT_DOUBLE_EQ(r.ConflictFactor(), 1.0);
}

TEST(SmemModelTest, StrideCausesConflicts) {
  // Stride of 128 bytes = 32 words: every thread hits bank 0.
  const auto addrs = Addrs(0, 128);
  const SmemAccessReport r = AnalyzeWarpLoad(addrs, LdsWidth::kLds32, 4);
  EXPECT_EQ(r.memory_cycles, 32);  // fully serialized
  EXPECT_DOUBLE_EQ(r.ConflictFactor(), 32.0);
}

TEST(SmemModelTest, SameAddressBroadcasts) {
  const auto addrs = Addrs(64, 0);  // all threads read the same word
  const SmemAccessReport r = AnalyzeWarpLoad(addrs, LdsWidth::kLds32, 4);
  EXPECT_EQ(r.memory_cycles, 1);
}

TEST(SmemModelTest, DualMmaTileLoadIsIdeal) {
  const SmemAccessReport r = DualMmaTileLoadCost();
  // 4 warps x 1 LDS.128 each, conflict-free, every byte consumed.
  EXPECT_EQ(r.instructions, 4);
  EXPECT_DOUBLE_EQ(r.ConflictFactor(), 1.0);
  EXPECT_DOUBLE_EQ(r.BandwidthEfficiency(), 1.0);
  EXPECT_EQ(r.bytes_loaded, 4u * 32 * 16);  // the whole 2 KiB supertile
}

TEST(SmemModelTest, ConventionalLayoutWastesHalfTheBandwidth) {
  const SmemAccessReport r = ConventionalTileLoadCost();
  EXPECT_DOUBLE_EQ(r.BandwidthEfficiency(), 0.5);  // "half the data is unused"
}

TEST(SmemModelTest, ConventionalLayoutIssuesMoreInstructions) {
  const SmemAccessReport dual = DualMmaTileLoadCost();
  const SmemAccessReport conv = ConventionalTileLoadCost();
  // 8x the warp-wide load instructions (4 vectors x 2 MMAs vs 1 LDS.128).
  EXPECT_EQ(conv.instructions, 8 * dual.instructions);
  EXPECT_GT(conv.memory_cycles, dual.memory_cycles);
}

TEST(SmemModelTest, ConventionalLayoutHasBankConflicts) {
  const SmemAccessReport conv = ConventionalTileLoadCost();
  EXPECT_GT(conv.ConflictFactor(), 1.0);
}

TEST(SmemModelTest, LdmatrixMisdeliversUint4) {
  // Figure 7a: with packed 4-bit elements, 75% of each thread's data lands
  // in the wrong lane — the instruction is unusable, not merely slow.
  EXPECT_DOUBLE_EQ(LdmatrixMisdeliveryFraction(), 0.75);
}

}  // namespace
}  // namespace liquid
