// The always-on GEMM arithmetic counters feed the profiler's
// arithmetic-intensity CSV (`--profile-out PREFIX` -> PREFIX.gemm_ai.csv).
// These tests pin the accounting formulas, the entry-point wiring, and the
// CSV schema the sink writes.

#include "core/gemm/gemm_counters.hpp"

#include <gtest/gtest.h>

#include "core/gemm/gemm.hpp"
#include "util/rng.hpp"

namespace liquid {
namespace {

MatrixF RandomMatrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  MatrixF m(rows, cols);
  for (auto& v : m.Flat()) v = static_cast<float>(rng.Normal(0, 0.1));
  return m;
}

TEST(GemmCountersTest, CountAccumulatesMacsAndBytes) {
  gemmstats::ResetGemmCounters();
  gemmstats::Count(gemmstats::Kernel::kW8A8, /*m=*/4, /*n=*/8, /*k=*/16,
                   /*weight_bytes=*/100, /*activation_bytes=*/50);
  gemmstats::Count(gemmstats::Kernel::kW8A8, 4, 8, 16, 100, 50);

  const gemmstats::KernelTotals t = gemmstats::Totals(gemmstats::Kernel::kW8A8);
  EXPECT_EQ(t.calls, 2u);
  EXPECT_EQ(t.macs, 2u * 4 * 8 * 16);
  // bytes = weights + activations + the m*n fp32 output, per call.
  EXPECT_EQ(t.bytes, 2u * (100 + 50 + 4 * 8 * 4));

  // Other kernels stay untouched.
  EXPECT_EQ(gemmstats::Totals(gemmstats::Kernel::kFp32).calls, 0u);
  gemmstats::ResetGemmCounters();
}

TEST(GemmCountersTest, RealGemmCallFiresTheCounter) {
  const MatrixF x = RandomMatrix(3, 32, 7);
  const MatrixF w = RandomMatrix(16, 32, 8);

  gemmstats::ResetGemmCounters();
  const MatrixF out = GemmReference(x, w);
  ASSERT_EQ(out.rows(), 3u);
  ASSERT_EQ(out.cols(), 16u);

  const gemmstats::KernelTotals t = gemmstats::Totals(gemmstats::Kernel::kFp32);
  EXPECT_EQ(t.calls, 1u);
  EXPECT_EQ(t.macs, 3u * 16 * 32);
  // fp32 weights + fp32 activations + fp32 output, 4 bytes each.
  EXPECT_EQ(t.bytes, (16u * 32 + 3u * 32 + 3u * 16) * 4);
  gemmstats::ResetGemmCounters();
}

TEST(GemmCountersTest, ResetZeroesEverything) {
  gemmstats::Count(gemmstats::Kernel::kW4A8Lqq, 2, 2, 2, 10, 10);
  gemmstats::ResetGemmCounters();
  for (std::size_t i = 0; i < gemmstats::kKernelCount; ++i) {
    const auto t = gemmstats::Totals(static_cast<gemmstats::Kernel>(i));
    EXPECT_EQ(t.calls, 0u);
    EXPECT_EQ(t.macs, 0u);
    EXPECT_EQ(t.bytes, 0u);
  }
}

TEST(GemmCountersTest, AiCsvSchemaGolden) {
  gemmstats::ResetGemmCounters();
  // 1 MAC = 2 FLOPs against 4 bytes -> arithmetic intensity 0.5 exactly.
  gemmstats::Count(gemmstats::Kernel::kW4A16, 1, 1, 1, 0, 0);
  const std::string csv = gemmstats::AiCsv();
  EXPECT_EQ(csv,
            "kernel,calls,macs,bytes,flops,arithmetic_intensity\n"
            "fp32,0,0,0,0,0\n"
            "fp16,0,0,0,0,0\n"
            "w8a8,0,0,0,0,0\n"
            "w4a16,1,1,4,2,0.5\n"
            "w4a8_lqq,0,0,0,0,0\n"
            "w4a8_dual_mma,0,0,0,0,0\n"
            "w4a8_qserve,0,0,0,0,0\n");
  gemmstats::ResetGemmCounters();
}

}  // namespace
}  // namespace liquid
