// Tests for the SWAR dequantization kernels (paper Section 5.3, Figure 8):
// bit-exactness against the scalar references over the full input domain and
// the headline instruction counts (7 instructions per 8 elements for LQQ).

#include "core/dequant/dequant.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace liquid {
namespace {

TEST(DequantTest, UnpackSplitsNibbles) {
  const std::array<std::uint8_t, 8> w{1, 2, 3, 4, 5, 6, 7, 8};
  const std::uint32_t reg = PackNibblesInterleaved(w);
  const Dequanted8 u = UnpackU4x8(reg);
  EXPECT_EQ(u.lo, PackBytes(1, 2, 3, 4));
  EXPECT_EQ(u.hi, PackBytes(5, 6, 7, 8));
}

TEST(DequantTest, UnpackCostsThreeInstructions) {
  IsaCounter c;
  (void)UnpackU4x8(0xDEADBEEFu, &c);
  EXPECT_EQ(c.Total(), 3u);  // AND, SHR, AND (Figure 8 left column)
}

TEST(DequantTest, LqqDequant4CostsTwoInstructions) {
  IsaCounter c;
  (void)LqqDequant4(PackBytes(1, 2, 3, 4), 16, BroadcastByte(100), &c);
  EXPECT_EQ(c.imad, 1u);
  EXPECT_EQ(c.logic, 1u);  // the XOR
  EXPECT_EQ(c.Total(), 2u);
}

TEST(DequantTest, LqqFullRegisterCostsSevenInstructions) {
  // The paper's headline: "eight elements are dequantized with only seven
  // instructions" (3 unpack + 2x2 dequant).
  IsaCounter c;
  (void)LqqDequant8(0x12345678u, 16, 9, &c);
  EXPECT_EQ(c.Total(), 7u);
  EXPECT_DOUBLE_EQ(MeasureAlphaLqq(), 7.0 / 8.0);
}

TEST(DequantTest, QserveAlphaIsSeveralTimesHigher) {
  const double lqq = MeasureAlphaLqq();
  const double qserve = MeasureAlphaQserve();
  EXPECT_GT(qserve, 3.0 * lqq);
  // And LQQ sits far below the overlap threshold of Section 3.3 (~5).
  EXPECT_LT(lqq, 5.0);
}

TEST(DequantTest, LqqSwarMatchesScalarExhaustively) {
  // All (q_u4, s, a) reachable combinations: q_u4 in [0,15], s in [1,16],
  // a in [9,247].  Every lane of the SWAR path must equal the scalar Eq. 12.
  for (int s = 1; s <= 16; ++s) {
    for (int a = 9; a <= 247; ++a) {
      for (int q = 0; q <= 15; ++q) {
        // Overflow precondition from the quantizer: q*s + a <= 255 holds for
        // reachable combinations; skip unreachable ones.
        if (q * s + a > 255) continue;
        const std::array<std::uint8_t, 8> w{
            static_cast<std::uint8_t>(q), 0,
            static_cast<std::uint8_t>(15 % (q + 1)), 1,
            static_cast<std::uint8_t>(q), 7, 2, 3};
        // Only lanes with the same reachability constraint:
        bool reachable = true;
        for (const auto lane : w) reachable &= lane * s + a <= 255;
        if (!reachable) continue;
        const std::uint32_t reg = PackNibblesInterleaved(w);
        const Dequanted8 d = LqqDequant8(reg, static_cast<std::uint8_t>(s),
                                         static_cast<std::uint8_t>(a));
        std::int8_t out[8];
        StoreDequanted8(d, out);
        for (int lane = 0; lane < 8; ++lane) {
          ASSERT_EQ(out[lane],
                    LqqDequantElement(w[static_cast<std::size_t>(lane)],
                                      static_cast<std::uint8_t>(s),
                                      static_cast<std::uint8_t>(a)))
              << "q=" << q << " s=" << s << " a=" << a << " lane=" << lane;
        }
      }
    }
  }
}

TEST(DequantTest, QserveSwarMatchesScalarExhaustively) {
  for (int s = 1; s <= 16; ++s) {
    for (int z = 0; z <= 15; ++z) {
      const std::uint8_t zs = static_cast<std::uint8_t>(z * s);
      for (int q = 0; q <= 15; ++q) {
        const std::array<std::uint8_t, 8> w{
            static_cast<std::uint8_t>(q), 15, 0, 8, 3,
            static_cast<std::uint8_t>(15 - q), 5, 11};
        const std::uint32_t reg = PackNibblesInterleaved(w);
        const Dequanted8 d = QserveDequant8(reg, static_cast<std::uint8_t>(s),
                                            zs);
        std::int8_t out[8];
        StoreDequanted8(d, out);
        for (int lane = 0; lane < 8; ++lane) {
          ASSERT_EQ(out[lane],
                    QserveDequantElement(w[static_cast<std::size_t>(lane)],
                                         static_cast<std::uint8_t>(s), zs))
              << "q=" << q << " s=" << s << " z=" << z;
        }
      }
    }
  }
}

TEST(DequantTest, RowDequantMatchesReferenceLqq) {
  Rng rng(1);
  MatrixF w(16, 256);
  for (auto& v : w.Flat()) v = static_cast<float>(rng.Normal(0, 0.05));
  const LqqWeights q = QuantizeWeightsLqq(w);
  const MatrixI8 ref = DequantizeSecondLevelReference(q);
  std::vector<std::int8_t> row(q.k);
  for (std::size_t n = 0; n < q.n; ++n) {
    LqqDequantRow(q, n, row);
    for (std::size_t k = 0; k < q.k; ++k) {
      ASSERT_EQ(row[k], ref.At(n, k)) << n << "," << k;
    }
  }
}

TEST(DequantTest, RowDequantMatchesReferenceQserve) {
  Rng rng(2);
  MatrixF w(16, 256);
  for (auto& v : w.Flat()) v = static_cast<float>(rng.Normal(0, 0.05));
  const QserveWeights q = QuantizeWeightsQserve(w, {.group_size = 128});
  const MatrixI8 ref = DequantizeSecondLevelReferenceQserve(q);
  std::vector<std::int8_t> row(q.k);
  for (std::size_t n = 0; n < q.n; ++n) {
    QserveDequantRow(q, n, row);
    for (std::size_t k = 0; k < q.k; ++k) {
      ASSERT_EQ(row[k], ref.At(n, k)) << n << "," << k;
    }
  }
}

TEST(DequantTest, InstructionCountScalesLinearly) {
  Rng rng(3);
  MatrixF w(4, 512);
  for (auto& v : w.Flat()) v = static_cast<float>(rng.Normal(0, 0.05));
  const LqqWeights q = QuantizeWeightsLqq(w);
  IsaCounter c;
  std::vector<std::int8_t> row(q.k);
  LqqDequantRow(q, 0, row, &c);
  // 512 elements = 64 registers x 7 instructions.
  EXPECT_EQ(c.Total(), 64u * 7);
}

}  // namespace
}  // namespace liquid
