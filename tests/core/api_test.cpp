// Tests of the public PrepareWeights facade: smoothing search, dual-MMA
// packing conditions, and the end-to-end accuracy benefit on outlier data.

#include "core/api.hpp"

#include <gtest/gtest.h>

#include "core/gemm/gemm.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace liquid {
namespace {

TEST(ApiTest, PrepareWeightsBuildsEverything) {
  Rng rng(1);
  MatrixF w(128, 256);
  for (auto& v : w.Flat()) v = static_cast<float>(rng.Normal(0, 0.05));
  MatrixF calib(16, 256);
  for (auto& v : calib.Flat()) v = static_cast<float>(rng.Normal(0, 1.0));

  const PreparedWeights prep = PrepareWeights(w, calib, {});
  EXPECT_EQ(prep.weights.n, 128u);
  EXPECT_EQ(prep.weights.k, 256u);
  EXPECT_EQ(prep.packed.TilesN(), 2u);
  EXPECT_EQ(prep.packed.TilesK(), 4u);
  EXPECT_EQ(prep.smooth_scale.size(), 256u);
  EXPECT_GT(prep.smooth_alpha, 0.0);
}

TEST(ApiTest, NoSmoothingLeavesScalesAtOne) {
  Rng rng(2);
  MatrixF w(64, 64);
  for (auto& v : w.Flat()) v = static_cast<float>(rng.Normal(0, 0.05));
  PrepareOptions opt;
  opt.smooth = false;
  const PreparedWeights prep = PrepareWeights(w, MatrixF(), opt);
  for (const float s : prep.smooth_scale) EXPECT_EQ(s, 1.0f);
  EXPECT_EQ(prep.smooth_alpha, 0.0);
}

TEST(ApiTest, UnalignedShapesSkipDualMmaPack) {
  Rng rng(3);
  MatrixF w(60, 64);  // N not a multiple of 64
  for (auto& v : w.Flat()) v = static_cast<float>(rng.Normal(0, 0.05));
  PrepareOptions options;
  options.smooth = false;
  const PreparedWeights prep = PrepareWeights(w, MatrixF(), options);
  EXPECT_EQ(prep.packed.regs.size(), 0u);
  EXPECT_EQ(prep.weights.n, 60u);  // linear weights still built
}

TEST(ApiTest, SmoothingImprovesOutlierActivationsAccuracy) {
  // With a strong activation outlier channel, the smoothed W4A8 pipeline
  // should beat the unsmoothed one end to end.
  Rng rng(4);
  const std::size_t m = 16, n = 64, k = 128;
  MatrixF x(m, k);
  for (auto& v : x.Flat()) v = static_cast<float>(rng.Normal(0, 1.0));
  for (std::size_t i = 0; i < m; ++i) x.At(i, 5) *= 80.0f;
  MatrixF w(n, k);
  for (auto& v : w.Flat()) v = static_cast<float>(rng.Normal(0, 0.05));
  const MatrixF ref = GemmReference(x, w);

  // Unsmoothed.
  const MatrixF y_plain = LiquidGemm(x, QuantizeWeightsLqq(w));
  // Smoothed: apply the inverse scale to activations at runtime.
  const PreparedWeights prep = PrepareWeights(w, x, {});
  MatrixF xs = x;
  SmoothActivations(xs, prep.smooth_scale);
  const MatrixF y_smooth = LiquidGemm(xs, prep.weights);

  const double e_plain = RelativeFrobeniusError(ref.Flat(), y_plain.Flat());
  const double e_smooth = RelativeFrobeniusError(ref.Flat(), y_smooth.Flat());
  EXPECT_LT(e_smooth, e_plain);
}

}  // namespace
}  // namespace liquid
