// Tests for the QServe-style baseline quantizer, including a demonstration of
// the wraparound hazard LiquidQuant eliminates (paper Sections 3.2 and 4).

#include "core/quant/qserve_quant.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/quant/liquid_quant.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace liquid {
namespace {

MatrixF RandomWeights(std::size_t n, std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  MatrixF w(n, k);
  for (auto& v : w.Flat()) v = static_cast<float>(rng.Normal(0, 0.05));
  return w;
}

TEST(QserveQuantTest, ParamsInRange) {
  const MatrixF w = RandomWeights(16, 512, 1);
  const QserveWeights q = QuantizeWeightsQserve(w);
  for (const QserveGroupParams& p : q.group_params) {
    EXPECT_GE(p.scale, 1);
    EXPECT_LE(p.scale, 16);
    EXPECT_LE(p.zero, 15);
    EXPECT_EQ(p.zero_scaled, static_cast<std::uint8_t>(p.zero * p.scale));
  }
}

TEST(QserveQuantTest, MultiplicationStaysUnsigned) {
  // Progressive quantization guarantee: q_u4 * s <= 240 for all elements.
  const MatrixF w = RandomWeights(16, 512, 2);
  const QserveWeights q = QuantizeWeightsQserve(w);
  for (std::size_t n = 0; n < q.n; ++n) {
    for (std::size_t k = 0; k < q.k; ++k) {
      const QserveGroupParams& p = q.Params(n, k / q.group_size);
      EXPECT_LE(static_cast<int>(q.U4At(n, k)) * p.scale, 240);
    }
  }
}

TEST(QserveQuantTest, SecondLevelErrorBounded) {
  const MatrixF w = RandomWeights(16, 256, 3);
  const FirstLevelResult first = QuantizeFirstLevel(w);
  QserveOptions opt;
  opt.group_size = 128;
  const QserveWeights q = QuantizeSecondLevelQserve(first, opt);
  const MatrixI8 rec = DequantizeSecondLevelReferenceQserve(q);
  for (std::size_t n = 0; n < q.n; ++n) {
    for (std::size_t k = 0; k < q.k; ++k) {
      const QserveGroupParams& p = q.Params(n, k / q.group_size);
      // Zero-point rounding adds up to s/2 on top of value rounding.
      EXPECT_LE(std::abs(static_cast<int>(rec.At(n, k)) -
                         static_cast<int>(first.q.At(n, k))),
                p.scale + 1);
    }
  }
}

TEST(QserveQuantTest, SubtractionCanCrossZero) {
  // The reason vsub4 is needed: dequantized values are signed, so the packed
  // subtraction must borrow across the zero boundary.  Verify a typical
  // weight tensor has both signs after dequantization.
  const MatrixF w = RandomWeights(8, 256, 4);
  const QserveWeights q = QuantizeWeightsQserve(w);
  const MatrixI8 rec = DequantizeSecondLevelReferenceQserve(q);
  bool saw_neg = false;
  bool saw_pos = false;
  for (const std::int8_t v : rec.Flat()) {
    saw_neg |= v < 0;
    saw_pos |= v > 0;
  }
  EXPECT_TRUE(saw_neg);
  EXPECT_TRUE(saw_pos);
}

TEST(QserveQuantTest, NaiveByteAdditionWouldWrap) {
  // Reproduce the paper's overflow demonstration in QServe terms: for a
  // group with min = -104, the scaled zero is large, and q_u4*s - z*s as a
  // plain unsigned byte subtraction wraps; the two's-complement wrap is only
  // correct because |result| < 128 — which zero-point *clamping* can violate
  // for extreme asymmetric groups.  Verify the clamp distorts such a group.
  MatrixI8 q(1, 128);
  for (std::size_t k = 0; k < 128; ++k) q.At(0, k) = -119;  // extreme
  q.At(0, 0) = 119;
  FirstLevelResult first;
  first.q = std::move(q);
  first.channel_scale = {1.0f};
  const QserveWeights qs = QuantizeSecondLevelQserve(first);
  const QserveGroupParams& p = qs.Params(0, 0);
  // z = round(119/16) = 7, but the exact zero point would be 119/15.867:
  // reconstruction of the max element saturates the UINT4 grid.
  const MatrixI8 rec = DequantizeSecondLevelReferenceQserve(qs);
  EXPECT_LE(p.zero, 15);
  EXPECT_LE(std::abs(static_cast<int>(rec.At(0, 0)) - 119), p.scale + 1);
}

TEST(QserveQuantTest, ComparableAccuracyToLqq) {
  // Both second levels quantize the same INT8 tensor to 4 bits; their MSE
  // should be within ~2x of each other on Gaussian data (QServe's zero-point
  // rounding costs it a little).
  const MatrixF w = RandomWeights(32, 512, 5);
  LqqOptions lopt;
  lopt.group_size = 64;
  QserveOptions qopt;
  qopt.group_size = 64;
  const MatrixF rec_lqq = DequantizeWeightsLqq(QuantizeWeightsLqq(w, lopt));
  const MatrixF rec_qs = DequantizeWeightsQserve(QuantizeWeightsQserve(w, qopt));
  const double mse_lqq = MeanSquaredError(w.Flat(), rec_lqq.Flat());
  const double mse_qs = MeanSquaredError(w.Flat(), rec_qs.Flat());
  EXPECT_LT(mse_lqq, mse_qs * 2.0);
  EXPECT_LT(mse_qs, mse_lqq * 2.0);
}

struct QserveSweepParam {
  std::size_t n;
  std::size_t k;
  std::size_t group;
};

class QserveSweepTest : public ::testing::TestWithParam<QserveSweepParam> {};

TEST_P(QserveSweepTest, ScalarDequantMatchesDefinition) {
  const auto [n, k, g] = GetParam();
  const MatrixF w = RandomWeights(n, k, 99 + n + k);
  QserveOptions opt;
  opt.group_size = g;
  const QserveWeights q = QuantizeWeightsQserve(w, opt);
  for (std::size_t row = 0; row < n; ++row) {
    for (std::size_t col = 0; col < k; ++col) {
      const QserveGroupParams& p = q.Params(row, col / g);
      const int expect = static_cast<int>(q.U4At(row, col)) * p.scale -
                         static_cast<int>(p.zero) * p.scale;
      EXPECT_EQ(QserveDequantElement(q.U4At(row, col), p.scale, p.zero_scaled),
                static_cast<std::int8_t>(expect));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QserveSweepTest,
    ::testing::Values(QserveSweepParam{1, 128, 128},
                      QserveSweepParam{4, 256, 64},
                      QserveSweepParam{8, 256, 128},
                      QserveSweepParam{16, 512, 128},
                      QserveSweepParam{3, 384, 128}));

}  // namespace
}  // namespace liquid
