// Work-stealing thread pool: the Submit/WaitIdle barrier contract the
// parallel cluster runtime is built on.  The pool's job is narrow — run
// every submitted task exactly once and make WaitIdle a true barrier (no
// task still running or queued when it returns) — so the tests hammer
// exactly that: counts, barrier visibility, reuse across many rounds,
// submit-from-worker, and uneven task sizes that force stealing.

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

namespace liquid::util {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 1000);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();  // nothing submitted — must not block
  pool.WaitIdle();  // and must be repeatable
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPoolTest, WaitIdleIsABarrier) {
  // Writes made by tasks must be visible after WaitIdle without any other
  // synchronization — the exact pattern the cluster simulator relies on
  // when it reads scheduler state back on the coordinating thread.
  ThreadPool pool(4);
  std::vector<int> slots(512, 0);
  for (int round = 0; round < 20; ++round) {
    for (std::size_t i = 0; i < slots.size(); ++i) {
      pool.Submit([&slots, i, round] { slots[i] = round + 1; });
    }
    pool.WaitIdle();
    for (std::size_t i = 0; i < slots.size(); ++i) {
      ASSERT_EQ(slots[i], round + 1) << "slot " << i << " round " << round;
    }
  }
}

TEST(ThreadPoolTest, UnevenTasksAllComplete) {
  // A few slow tasks among many fast ones: idle workers must steal the
  // backlog from the queue behind the slow task instead of waiting.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    const bool slow = i % 50 == 0;
    pool.Submit([&count, slow] {
      if (slow) std::this_thread::sleep_for(std::chrono::milliseconds(5));
      count.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, SubmitFromWorkerIsCountedByWaitIdle) {
  // A task that fans out child tasks: WaitIdle must not return until the
  // children have run too (the child submit happens before the parent's
  // pending decrement, so the count never dips to zero early).
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&pool, &count] {
      for (int j = 0; j < 4; ++j) {
        pool.Submit(
            [&count] { count.fetch_add(1, std::memory_order_relaxed); });
      }
      count.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 50 * 5);
}

TEST(ThreadPoolTest, ReusableAcrossManyBarriers) {
  // The cluster simulator calls Submit/WaitIdle once per event-pump slice —
  // tens of thousands of tiny rounds.  Exercise the sleep/wake transitions.
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 2000; ++round) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    pool.WaitIdle();
  }
  EXPECT_EQ(count.load(), 4000);
}

TEST(ThreadPoolTest, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, DestructionWithIdleWorkersIsClean) {
  // Workers asleep on the wake condition variable must observe stop_ and
  // join; run a few pools back to back to shake out shutdown races.
  for (int i = 0; i < 10; ++i) {
    ThreadPool pool(3);
    std::atomic<int> count{0};
    pool.Submit([&count] { count.fetch_add(1); });
    pool.WaitIdle();
    EXPECT_EQ(count.load(), 1);
  }
}

}  // namespace
}  // namespace liquid::util
