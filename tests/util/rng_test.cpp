#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace liquid {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, IntInclusiveBounds) {
  Rng rng(4);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.Int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsApproximate) {
  Rng rng(5);
  const int n = 200000;
  double sum = 0;
  double sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(RngTest, OutlierTensorHasHeavierTail) {
  Rng rng(6);
  const auto plain = rng.GaussianTensor(50000, 1.0);
  Rng rng2(6);
  const auto outlier = rng2.OutlierTensor(50000, 1.0, 0.01, 20.0);
  const auto absmax = [](const std::vector<float>& v) {
    float m = 0;
    for (float x : v) m = std::max(m, std::fabs(x));
    return m;
  };
  EXPECT_GT(absmax(outlier), 2.0f * absmax(plain));
}

}  // namespace
}  // namespace liquid
