#include "util/sliding_window.hpp"

#include <gtest/gtest.h>

namespace liquid {
namespace {

TEST(SlidingWindowTest, EmptyWindowReportsZero) {
  SlidingWindowStats w(10.0);
  EXPECT_EQ(w.Count(100.0), 0u);
  EXPECT_DOUBLE_EQ(w.Percentile(100.0, 99), 0.0);
  EXPECT_DOUBLE_EQ(w.Mean(100.0), 0.0);
}

TEST(SlidingWindowTest, EvictsSamplesOlderThanWindow) {
  SlidingWindowStats w(5.0);
  w.Add(0.0, 1.0);
  w.Add(2.0, 2.0);
  w.Add(4.0, 3.0);
  EXPECT_EQ(w.Count(4.0), 3u);
  // At t=6 the sample from t=0 has aged out.
  EXPECT_EQ(w.Count(6.0), 2u);
  EXPECT_DOUBLE_EQ(w.Mean(6.0), 2.5);
  // At t=20 everything is gone.
  EXPECT_EQ(w.Count(20.0), 0u);
}

TEST(SlidingWindowTest, PercentileOverLiveSamples) {
  SlidingWindowStats w(100.0);
  for (int i = 1; i <= 100; ++i) w.Add(static_cast<double>(i), i);
  EXPECT_NEAR(w.Percentile(100.0, 50), 50.5, 1.0);
  EXPECT_NEAR(w.Percentile(100.0, 99), 99.0, 1.0);
  EXPECT_DOUBLE_EQ(w.Percentile(100.0, 100), 100.0);
}

TEST(SlidingWindowTest, ToleratesOutOfOrderTimestamps) {
  // Fleet completions interleave across replica clocks; eviction must still
  // be strictly time-ordered.
  SlidingWindowStats w(5.0);
  w.Add(10.0, 1.0);
  w.Add(8.0, 2.0);   // late arrival from a slower replica
  w.Add(11.0, 3.0);
  w.Add(9.5, 4.0);
  EXPECT_EQ(w.Count(11.0), 4u);
  // At t=14 the window is (9, 14]: samples at 8 are evicted (and only they).
  EXPECT_EQ(w.Count(14.0), 3u);
  EXPECT_DOUBLE_EQ(w.Mean(14.0), (1.0 + 3.0 + 4.0) / 3.0);
}

TEST(SlidingWindowTest, WindowBoundaryIsInclusive) {
  SlidingWindowStats w(5.0);
  w.Add(5.0, 7.0);
  // now - window == t exactly: the sample is still live.
  EXPECT_EQ(w.Count(10.0), 1u);
  EXPECT_DOUBLE_EQ(w.Percentile(10.0, 50), 7.0);
}

}  // namespace
}  // namespace liquid
