// Tests for the software binary16 type: exact round-trips, RNE rounding,
// subnormals, overflow, and special values.

#include "util/half.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/rng.hpp"

namespace liquid {
namespace {

TEST(HalfTest, ExactSmallIntegers) {
  for (int i = -2048; i <= 2048; ++i) {  // all integers <= 2^11 are exact
    const float f = static_cast<float>(i);
    EXPECT_EQ(Half(f).ToFloat(), f) << i;
  }
}

TEST(HalfTest, KnownBitPatterns) {
  EXPECT_EQ(Half(1.0f).bits(), 0x3C00u);
  EXPECT_EQ(Half(-2.0f).bits(), 0xC000u);
  EXPECT_EQ(Half(0.5f).bits(), 0x3800u);
  EXPECT_EQ(Half(65504.0f).bits(), 0x7BFFu);  // max finite half
  EXPECT_EQ(Half(0.0f).bits(), 0x0000u);
  EXPECT_EQ(Half(-0.0f).bits(), 0x8000u);
  // Smallest positive subnormal: 2^-24.
  EXPECT_EQ(Half(std::ldexp(1.0f, -24)).bits(), 0x0001u);
  // Smallest normal: 2^-14.
  EXPECT_EQ(Half(std::ldexp(1.0f, -14)).bits(), 0x0400u);
}

TEST(HalfTest, RoundTripAllBitPatterns) {
  // Every finite half converts to float and back to the identical pattern.
  for (std::uint32_t bits = 0; bits <= 0xFFFFu; ++bits) {
    const Half h = Half::FromBits(static_cast<std::uint16_t>(bits));
    if (h.IsNan()) continue;
    const Half back(h.ToFloat());
    EXPECT_EQ(back.bits(), h.bits()) << "pattern 0x" << std::hex << bits;
  }
}

TEST(HalfTest, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10: ties to even (1.0).
  EXPECT_EQ(Half(1.0f + std::ldexp(1.0f, -11)).bits(), 0x3C00u);
  // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: ties to even (1+2^-9).
  EXPECT_EQ(Half(1.0f + 3 * std::ldexp(1.0f, -11)).bits(), 0x3C02u);
  // Slightly above the halfway point rounds up.
  EXPECT_EQ(Half(1.0f + std::ldexp(1.0f, -11) + std::ldexp(1.0f, -20)).bits(),
            0x3C01u);
}

TEST(HalfTest, OverflowToInfinity) {
  EXPECT_TRUE(Half(65520.0f).IsInf());   // rounds to 2^16 -> inf
  EXPECT_TRUE(Half(1e9f).IsInf());
  EXPECT_TRUE(Half(-1e9f).IsInf());
  EXPECT_EQ(Half(65519.9f).bits(), 0x7BFFu);  // just below: max finite
  EXPECT_TRUE(Half(std::numeric_limits<float>::infinity()).IsInf());
}

TEST(HalfTest, UnderflowToZero) {
  EXPECT_EQ(Half(std::ldexp(1.0f, -26)).bits(), 0x0000u);  // below half of min subnormal
  EXPECT_EQ(Half(-std::ldexp(1.0f, -26)).bits(), 0x8000u);
}

TEST(HalfTest, NanPropagates) {
  const Half h(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(h.IsNan());
  EXPECT_TRUE(std::isnan(h.ToFloat()));
}

TEST(HalfTest, SubnormalRoundTrip) {
  for (std::uint16_t bits = 1; bits < 0x0400u; ++bits) {  // all subnormals
    const Half h = Half::FromBits(bits);
    EXPECT_EQ(Half(h.ToFloat()).bits(), bits);
  }
}

TEST(HalfTest, ArithmeticMatchesFloatThenRound) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const float a = static_cast<float>(rng.Uniform(-100.0, 100.0));
    const float b = static_cast<float>(rng.Uniform(-100.0, 100.0));
    const Half ha(a);
    const Half hb(b);
    EXPECT_EQ((ha * hb).bits(), Half(ha.ToFloat() * hb.ToFloat()).bits());
    EXPECT_EQ((ha + hb).bits(), Half(ha.ToFloat() + hb.ToFloat()).bits());
  }
}

TEST(HalfTest, QuantizeToHalfIsIdempotent) {
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const float v = static_cast<float>(rng.Normal(0.0, 10.0));
    const float once = QuantizeToHalf(v);
    EXPECT_EQ(QuantizeToHalf(once), once);
    // Relative error bound for normal-range values: 2^-11.
    if (std::fabs(v) > std::ldexp(1.0f, -14)) {
      EXPECT_LE(std::fabs(once - v), std::fabs(v) * std::ldexp(1.0f, -11));
    }
  }
}

}  // namespace
}  // namespace liquid
