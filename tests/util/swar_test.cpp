// Tests for the emulated GPU register ISA: semantics of each instruction,
// instruction accounting, and the vadd4/vsub4 lowerings against a per-byte
// reference.

#include "util/swar.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace liquid {
namespace {

TEST(SwarTest, PackAndExtractBytes) {
  const std::uint32_t reg = PackBytes(0x01, 0x02, 0x03, 0x04);
  EXPECT_EQ(reg, 0x04030201u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ByteLane(reg, i), static_cast<std::uint8_t>(i + 1));
  }
}

TEST(SwarTest, NibbleInterleaveRoundTrip) {
  Rng rng(1);
  for (int trial = 0; trial < 1000; ++trial) {
    std::array<std::uint8_t, 8> w{};
    for (auto& v : w) v = static_cast<std::uint8_t>(rng.Below(16));
    const std::uint32_t reg = PackNibblesInterleaved(w);
    EXPECT_EQ(UnpackNibblesInterleaved(reg), w);
  }
}

TEST(SwarTest, NibbleInterleaveLayoutMatchesFigure8) {
  // Figure 8: byte i of the register holds (w[i+4] << 4) | w[i].
  const std::array<std::uint8_t, 8> w{1, 2, 3, 4, 5, 6, 7, 8};
  const std::uint32_t reg = PackNibblesInterleaved(w);
  EXPECT_EQ(ByteLane(reg, 0), 0x51);  // w4=5, w0=1
  EXPECT_EQ(ByteLane(reg, 1), 0x62);
  EXPECT_EQ(ByteLane(reg, 2), 0x73);
  EXPECT_EQ(ByteLane(reg, 3), 0x84);
}

TEST(SwarTest, BroadcastByte) {
  EXPECT_EQ(BroadcastByte(0xAB), 0xABABABABu);
  EXPECT_EQ(BroadcastByte(0x00), 0u);
}

TEST(SwarTest, ImadWrapsLikeHardware) {
  IsaCounter c;
  // 32-bit wraparound semantics.
  EXPECT_EQ(isa::Imad(0xFFFFFFFFu, 2, 3, &c), 1u);
  EXPECT_EQ(c.imad, 1u);
}

TEST(SwarTest, PrmtGathersBytes) {
  const std::uint32_t a = 0x44332211u;
  const std::uint32_t b = 0x88776655u;
  // Identity on a.
  EXPECT_EQ(isa::Prmt(a, b, 0x3210), a);
  // Select bytes 4..7 -> b.
  EXPECT_EQ(isa::Prmt(a, b, 0x7654), b);
  // Reverse of a.
  EXPECT_EQ(isa::Prmt(a, b, 0x0123), 0x11223344u);
  // Sign-replication mode: selector nibble 0xB = sign bit + byte 3 of a,
  // which is 0x44 (MSB clear) -> replicated sign is 0x00.
  EXPECT_EQ(isa::Prmt(a, b, 0x000B) & 0xFFu, 0x00u);
  // Byte 7 (0x88, MSB set) -> 0xFF.
  EXPECT_EQ(isa::Prmt(a, b, 0x000Fu) & 0xFFu, 0xFFu);
}

TEST(SwarTest, Vadd4MatchesPerByteReference) {
  Rng rng(2);
  for (int trial = 0; trial < 20000; ++trial) {
    const std::uint32_t a = static_cast<std::uint32_t>(rng.Next());
    const std::uint32_t b = static_cast<std::uint32_t>(rng.Next());
    const std::uint32_t got = isa::Vadd4(a, b);
    for (int i = 0; i < 4; ++i) {
      const std::uint8_t expect =
          static_cast<std::uint8_t>(ByteLane(a, i) + ByteLane(b, i));
      EXPECT_EQ(ByteLane(got, i), expect);
    }
  }
}

TEST(SwarTest, Vsub4MatchesPerByteReference) {
  Rng rng(3);
  for (int trial = 0; trial < 20000; ++trial) {
    const std::uint32_t a = static_cast<std::uint32_t>(rng.Next());
    const std::uint32_t b = static_cast<std::uint32_t>(rng.Next());
    const std::uint32_t got = isa::Vsub4(a, b);
    for (int i = 0; i < 4; ++i) {
      const std::uint8_t expect =
          static_cast<std::uint8_t>(ByteLane(a, i) - ByteLane(b, i));
      EXPECT_EQ(ByteLane(got, i), expect);
    }
  }
}

TEST(SwarTest, Vadd4CostsMultipleInstructions) {
  // The paper's point: vadd4 is not native and lowers to several ops.
  IsaCounter c;
  (void)isa::Vadd4(0x01020304u, 0x05060708u, &c);
  EXPECT_GE(c.Total(), 6u);
  IsaCounter s;
  (void)isa::Vsub4(0x01020304u, 0x05060708u, &s);
  EXPECT_GT(s.Total(), c.Total());
}

TEST(SwarTest, CounterAccumulatesByClass) {
  IsaCounter c;
  (void)isa::And(1, 2, &c);
  (void)isa::Xor(1, 2, &c);
  (void)isa::Shr(8, 1, &c);
  (void)isa::Imad(2, 3, 4, &c);
  (void)isa::Lop3AndOr(1, 2, 3, &c);
  EXPECT_EQ(c.logic, 2u);
  EXPECT_EQ(c.shift, 1u);
  EXPECT_EQ(c.imad, 1u);
  EXPECT_EQ(c.lop3, 1u);
  EXPECT_EQ(c.Total(), 5u);

  IsaCounter d = c;
  d += c;
  EXPECT_EQ(d.Total(), 10u);
}

TEST(SwarTest, NullCounterIsFree) {
  // Ops must work uninstrumented (the hot GEMM path passes nullptr).
  EXPECT_EQ(isa::And(0xF0F0F0F0u, 0x0F0F0F0Fu), 0u);
  EXPECT_EQ(isa::Xor(0xAAu, 0xFFu), 0x55u);
}

}  // namespace
}  // namespace liquid
