#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/strings.hpp"

namespace liquid {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  Table t("demo");
  t.SetHeader({"system", "tok/s"});
  t.AddRow({"LiquidServe", "6721"});
  t.AddRow({"QServe", "5402"});
  const std::string s = t.Render();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("LiquidServe"), std::string::npos);
  EXPECT_NE(s.find("6721"), std::string::npos);
  // Header separator exists.
  EXPECT_NE(s.find("+--"), std::string::npos);
}

TEST(TableTest, HandlesRaggedRows) {
  Table t;
  t.SetHeader({"a", "b", "c"});
  t.AddRow({"only-one"});
  const std::string s = t.Render();
  EXPECT_NE(s.find("only-one"), std::string::npos);
}

TEST(TableTest, RuleInsertsSeparator) {
  Table t;
  t.AddRow({"x"});
  t.AddRule();
  t.AddRow({"y"});
  const std::string s = t.Render();
  // 4 rules total: top, two around the ruled row... count occurrences.
  std::size_t count = 0;
  for (std::size_t pos = s.find('+'); pos != std::string::npos;
       pos = s.find('+', pos + 1)) {
    if (pos == 0 || s[pos - 1] == '\n') ++count;
  }
  EXPECT_EQ(count, 3u);  // top, before "y", bottom
}

TEST(StringsTest, Format) {
  EXPECT_EQ(Format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(FixedDouble(3.14159, 2), "3.14");
}

TEST(StringsTest, HumanTime) {
  EXPECT_EQ(HumanTime(1.5), "1.500 s");
  EXPECT_EQ(HumanTime(0.0015), "1.500 ms");
  EXPECT_EQ(HumanTime(1.5e-6), "1.500 us");
  EXPECT_EQ(HumanTime(5e-9), "5.0 ns");
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(80e9), "74.51 GiB");
}

TEST(StringsTest, WithCommas) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(16694), "16,694");
  EXPECT_EQ(WithCommas(1234567), "1,234,567");
  EXPECT_EQ(WithCommas(-1234), "-1,234");
}

}  // namespace
}  // namespace liquid
