#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace liquid {
namespace {

TEST(StatsTest, SummaryBasics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const Summary s = Summarize(std::span<const double>(v));
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(StatsTest, SummaryEmpty) {
  const Summary s = Summarize(std::span<const double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 30.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 50.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 20.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 12.5), 15.0);
}

TEST(StatsTest, MseAndSqnr) {
  const std::vector<float> ref{1.0f, -1.0f, 1.0f, -1.0f};
  const std::vector<float> rec{1.1f, -0.9f, 1.1f, -0.9f};
  EXPECT_NEAR(MeanSquaredError(ref, rec), 0.01, 1e-6);
  // Signal power 1, noise 0.01 -> 20 dB.
  EXPECT_NEAR(SignalToQuantNoiseDb(ref, rec), 20.0, 1e-3);
  EXPECT_NEAR(MaxAbsError(ref, rec), 0.1, 1e-6);
}

TEST(StatsTest, PerfectReconstructionIsInfiniteSqnr) {
  const std::vector<float> ref{1.0f, 2.0f};
  EXPECT_TRUE(std::isinf(SignalToQuantNoiseDb(ref, ref)));
  EXPECT_DOUBLE_EQ(RelativeFrobeniusError(ref, ref), 0.0);
}

TEST(StatsTest, RelativeFrobenius) {
  const std::vector<float> ref{3.0f, 4.0f};  // norm 5
  const std::vector<float> rec{3.0f, 3.0f};  // error norm 1
  EXPECT_NEAR(RelativeFrobeniusError(ref, rec), 0.2, 1e-6);
}

TEST(StatsTest, GeometricMean) {
  const std::vector<double> v{1.0, 4.0};
  EXPECT_NEAR(GeometricMean(v), 2.0, 1e-12);
  const std::vector<double> ones{1.0, 1.0, 1.0};
  EXPECT_NEAR(GeometricMean(ones), 1.0, 1e-12);
}

}  // namespace
}  // namespace liquid
