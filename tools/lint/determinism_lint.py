#!/usr/bin/env python3
"""Determinism linter for the liquid_serve source tree.

The simulator's headline contract is bit-exact determinism under a fixed
seed — goldens, the parallel-vs-serial equivalence suite, and the bench
baselines all assume it.  This linter statically rejects the constructs that
break that contract before they reach a flaky golden:

  wall-clock          Wall-clock reads (std::chrono::steady_clock /
                      system_clock / high_resolution_clock, clock_gettime,
                      gettimeofday) anywhere except util/wall_timer.hpp (the
                      sanctioned wrapper) and obs/prof/ (the wall profiler —
                      wall time is its entire point, and its exporters gate
                      every wall-derived column behind include_times).
  adhoc-rng           std::rand / srand / std::random_device / std:: engine
                      types (mt19937 etc.) outside util/rng.hpp — all
                      simulation randomness must flow through the seeded
                      xoshiro Rng so runs replay.
  unordered-iteration Range-for or .begin()/.cbegin()/.rbegin() over a
                      variable declared std::unordered_map/unordered_set in
                      the same file.  Iteration order is
                      implementation-defined; anything it feeds (stats,
                      traces, JSON, routing decisions) becomes
                      run-to-run unstable.  Convert to an ordered container,
                      sort the keys first, or suppress with a reason if the
                      order provably cannot escape (e.g. erase-only sweeps).
  pointer-keyed-order std::map/std::set keyed on a pointer type: ordered by
                      address, and addresses differ run to run (ASLR, heap
                      layout), so the "ordered" container is still
                      nondeterministic.
  build-timestamp     __DATE__ / __TIME__ / __TIMESTAMP__ — bakes the build
                      instant into the binary.

Suppression: append `// NOLINT-DETERMINISM(reason)` to the offending line,
or put it alone on the immediately preceding line.  The reason is mandatory;
a bare NOLINT-DETERMINISM (or empty parens) is itself reported as a
`bad-suppression` finding and cannot be suppressed.

Exit status: 0 when every finding is suppressed (or there are none),
1 when unsuppressed findings remain, 2 on usage errors.

Machine-readable output: `--json -` (stdout) or `--json FILE` emits
{"version": 1, "findings": [...], "summary": {...}}; each finding carries
file, line, rule, message, suppressed, and the suppression reason.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

CXX_EXTENSIONS = (".hpp", ".h", ".cpp", ".cc", ".cxx", ".inl")

# Paths (matched against the /-normalized relative path) where a rule is the
# sanctioned implementation rather than a violation.
RULE_ALLOWED_PATHS = {
    "wall-clock": ("util/wall_timer.hpp", "obs/prof/"),
    "adhoc-rng": ("util/rng.hpp",),
}

WALL_CLOCK_RE = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock"
    r"|clock_gettime|gettimeofday|QueryPerformanceCounter)\b"
)
ADHOC_RNG_RE = re.compile(
    r"(?:\bstd::rand\b|\bsrand\s*\(|\brandom_device\b"
    r"|\bmt19937(?:_64)?\b|\bminstd_rand0?\b|\branlux(?:24|48)\b"
    r"|\bdefault_random_engine\b)"
)
POINTER_KEY_RE = re.compile(r"\bstd::(?:map|set|multimap|multiset)\s*<[^,<>]*\*")
TIMESTAMP_RE = re.compile(r"__(?:DATE|TIME|TIMESTAMP)__")
UNORDERED_DECL_RE = re.compile(r"\b(?:std\s*::\s*)?unordered_(?:map|set|multimap|multiset)\s*<")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")

SUPPRESS_RE = re.compile(r"NOLINT-DETERMINISM\s*(\(([^)]*)\))?")


class Finding:
    __slots__ = ("file", "line", "rule", "message", "suppressed", "reason")

    def __init__(self, file, line, rule, message, suppressed=False, reason=None):
        self.file = file
        self.line = line
        self.rule = rule
        self.message = message
        self.suppressed = suppressed
        self.reason = reason

    def as_dict(self):
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "suppressed": self.suppressed,
            "reason": self.reason,
        }


def strip_comments_and_strings(text):
    """Blanks out comments, string literals and char literals while
    preserving line structure, so rule regexes never match prose or quoted
    text.  Returns the stripped text."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
            out.append(c if c in ('"', "\n") else " ")
            if c == '"':
                out[-1] = " "
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
            out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def collect_suppressions(raw_lines, findings, rel):
    """Maps 1-based line number -> reason for every well-formed
    NOLINT-DETERMINISM(reason).  A marker suppresses findings on its own
    line; a marker on an otherwise comment-only line also covers the next
    line.  Malformed markers (no parens / empty reason) become
    bad-suppression findings."""
    reasons = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        reason = (m.group(2) or "").strip() if m.group(1) else None
        if not reason:
            findings.append(
                Finding(
                    rel,
                    idx,
                    "bad-suppression",
                    "NOLINT-DETERMINISM requires a parenthesized reason: "
                    "NOLINT-DETERMINISM(<why this is deterministic-safe>)",
                )
            )
            continue
        reasons[idx] = reason
        before = line[: m.start()].strip()
        if before in ("", "//", "/*", "*", "*/") or before.endswith("//"):
            # Marker-only line: it covers the next source line.
            reasons.setdefault(idx + 1, reason)
    return reasons


def matching_angle_close(text, open_idx):
    """Index just past the '>' matching the '<' at open_idx, or -1."""
    depth = 0
    i = open_idx
    n = len(text)
    while i < n:
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            # Ignore '->' and '>>' handled naturally: '>>' closes two levels,
            # which is exactly what nested templates need; '->' never appears
            # inside a template argument list at depth > 0 in declarations.
            if i > 0 and text[i - 1] == "-":
                i += 1
                continue
            depth -= 1
            if depth == 0:
                return i + 1
        elif c == ";":
            return -1  # malformed / macro soup: bail out
        i += 1
    return -1


def unordered_decl_names(stripped):
    """Finds identifiers declared with an unordered container type anywhere
    in the (comment-stripped) file text.  Intentionally file-local and
    syntactic: cross-file aliasing is out of scope for a lint pass."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(stripped):
        open_idx = stripped.index("<", m.start())
        close = matching_angle_close(stripped, open_idx)
        if close < 0:
            continue
        # Skip declarator decorations between the template-id and the name.
        rest = stripped[close : close + 400]
        rest = re.sub(r"^(?:\s|[&*]|const\b|noexcept\b)+", "", rest)
        ident = IDENT_RE.match(rest)
        if ident:
            names.add(ident.group(0))
    return names


def line_of(stripped, offset):
    return stripped.count("\n", 0, offset) + 1


def companion_header_names(path):
    """Unordered-container member names declared in the same-stem header next
    to a .cpp file, so out-of-line method bodies (e.g. Router::ForgetReplica
    iterating a member declared in router.hpp) are still caught."""
    stem, ext = os.path.splitext(path)
    if ext not in (".cpp", ".cc", ".cxx"):
        return set()
    for header_ext in (".hpp", ".h"):
        header = stem + header_ext
        if os.path.isfile(header):
            try:
                with open(header, encoding="utf-8", errors="replace") as f:
                    return unordered_decl_names(strip_comments_and_strings(f.read()))
            except OSError:
                return set()
    return set()


def scan_file(path, rel, findings):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read()
    except OSError as err:
        print(f"determinism-lint: cannot read {path}: {err}", file=sys.stderr)
        return
    raw_lines = raw.splitlines()
    reasons = collect_suppressions(raw_lines, findings, rel)
    stripped = strip_comments_and_strings(raw)
    stripped_lines = stripped.splitlines()

    def report(lineno, rule, message):
        allowed = RULE_ALLOWED_PATHS.get(rule, ())
        for prefix in allowed:
            if rel.endswith(prefix) or (prefix.endswith("/") and f"/{prefix}" in f"/{rel}"):
                return
        reason = reasons.get(lineno)
        findings.append(Finding(rel, lineno, rule, message, reason is not None, reason))

    simple_rules = (
        ("wall-clock", WALL_CLOCK_RE,
         "wall-clock read outside util/wall_timer.hpp / obs/prof — simulated "
         "time must come from the scheduler clock, host time from WallTimer"),
        ("adhoc-rng", ADHOC_RNG_RE,
         "ad-hoc RNG outside util/rng.hpp — use the seeded util::Rng so runs "
         "replay bit-for-bit"),
        ("pointer-keyed-order", POINTER_KEY_RE,
         "std::map/std::set keyed on a pointer orders by address, which "
         "differs run to run — key on a stable id instead"),
        ("build-timestamp", TIMESTAMP_RE,
         "__DATE__/__TIME__/__TIMESTAMP__ bake the build instant into the "
         "binary"),
    )
    for lineno, line in enumerate(stripped_lines, start=1):
        for rule, regex, message in simple_rules:
            if regex.search(line):
                report(lineno, rule, message)

    names = unordered_decl_names(stripped) | companion_header_names(path)
    if names:
        name_alt = "|".join(sorted(re.escape(n) for n in names))
        range_for_re = re.compile(
            r"\bfor\s*\([^;()]*:\s*[^)]*\b(?:" + name_alt + r")\b")
        begin_re = re.compile(
            r"\b(?:" + name_alt + r")\s*\.\s*(?:c?r?begin)\s*\(")
        for lineno, line in enumerate(stripped_lines, start=1):
            if range_for_re.search(line) or begin_re.search(line):
                report(
                    lineno,
                    "unordered-iteration",
                    "iteration over an unordered container — order is "
                    "implementation-defined and breaks run-to-run "
                    "determinism if it escapes; use an ordered container, "
                    "sort first, or suppress with a reason",
                )


def gather_files(paths):
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for root, dirs, names in os.walk(p):
                dirs.sort()
                for name in sorted(names):
                    if name.endswith(CXX_EXTENSIONS):
                        files.append(os.path.join(root, name))
        else:
            print(f"determinism-lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="determinism_lint.py",
        description="Static determinism lint for liquid_serve C++ sources.",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to scan")
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="write machine-readable findings to FILE ('-' = stdout)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the human-readable findings listing",
    )
    args = parser.parse_args(argv)

    findings = []
    for path in gather_files(args.paths):
        rel = os.path.relpath(path).replace(os.sep, "/")
        scan_file(path, rel, findings)
    findings.sort(key=lambda f: (f.file, f.line, f.rule))

    unsuppressed = [f for f in findings if not f.suppressed]
    if not args.quiet:
        for f in findings:
            tag = f" [suppressed: {f.reason}]" if f.suppressed else ""
            print(f"{f.file}:{f.line}: [{f.rule}] {f.message}{tag}")
        print(
            f"determinism-lint: {len(findings)} finding(s), "
            f"{len(unsuppressed)} unsuppressed"
        )

    if args.json:
        payload = json.dumps(
            {
                "version": 1,
                "findings": [f.as_dict() for f in findings],
                "summary": {
                    "total": len(findings),
                    "unsuppressed": len(unsuppressed),
                    "suppressed": len(findings) - len(unsuppressed),
                },
            },
            indent=2,
        )
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as f:
                f.write(payload + "\n")

    return 1 if unsuppressed else 0


if __name__ == "__main__":
    sys.exit(main())
