// Functional CPU GEMM benchmark: measured wall-clock of the numerically
// verified kernels.  This is NOT a GPU performance claim — it is a second,
// executable witness that the LiquidQuant main loop (SWAR dequant + INT8
// MAC) does strictly less work per element than the QServe-style main loop,
// independent of the simulator.
//
// The unsuffixed BM_* benchmarks run whatever provider `GemmProvider::kAuto`
// resolves to (LIQUID_GEMM_PROVIDER env override, then CPUID); a suffixed
// variant per available provider (e.g. BM_GemmW4A8Liquid/reference vs
// BM_GemmW4A8Liquid/avx2) is registered at startup so one run produces the
// scalar-vs-SIMD comparison table.
//
// `--check-speedup` switches to gate mode: times the reference and AVX2
// providers on the W4A8 LiquidGEMM hot kernel (16x512x2048) and exits
// non-zero if AVX2 is available but below 3x — the CI perf regression gate.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "core/gemm/gemm.hpp"
#include "util/rng.hpp"
#include "util/wall_timer.hpp"

namespace {

using namespace liquid;

struct Problem {
  MatrixF x;
  MatrixF w;
  QuantizedActivations xq;
};

Problem Make(std::size_t m, std::size_t n, std::size_t k) {
  Rng rng(7);
  Problem p{MatrixF(m, k), MatrixF(n, k), {}};
  for (auto& v : p.x.Flat()) v = static_cast<float>(rng.Normal(0, 1));
  for (auto& v : p.w.Flat()) v = static_cast<float>(rng.Normal(0, 0.05));
  p.xq = QuantizeActivationsPerToken(p.x);
  return p;
}

constexpr std::size_t kM = 16;
constexpr std::size_t kN = 512;
constexpr std::size_t kK = 2048;

// --- kAuto benchmarks (stable names; the active provider) -------------------

void BM_GemmW4A8Liquid(benchmark::State& state) {
  const Problem p = Make(kM, kN, kK);
  const LqqWeights w = QuantizeWeightsLqq(p.w);
  for (auto _ : state) {
    MatrixF y = GemmW4A8Liquid(p.xq, w);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_GemmW4A8Liquid)->Unit(benchmark::kMillisecond);

void BM_GemmW4A8Qserve(benchmark::State& state) {
  const Problem p = Make(kM, kN, kK);
  const QserveWeights w = QuantizeWeightsQserve(p.w);
  for (auto _ : state) {
    MatrixF y = GemmW4A8Qserve(p.xq, w);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_GemmW4A8Qserve)->Unit(benchmark::kMillisecond);

void BM_GemmW8A8(benchmark::State& state) {
  const Problem p = Make(kM, kN, kK);
  const W8A8Weights w = QuantizeWeightsW8A8(p.w);
  for (auto _ : state) {
    MatrixF y = GemmW8A8(p.xq, w);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_GemmW8A8)->Unit(benchmark::kMillisecond);

void BM_GemmFp32Reference(benchmark::State& state) {
  const Problem p = Make(kM, kN, kK);
  for (auto _ : state) {
    MatrixF y = GemmReference(p.x, p.w);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_GemmFp32Reference)->Unit(benchmark::kMillisecond);

void BM_QuantizeWeightsLqq(benchmark::State& state) {
  // Offline cost: two-level quantization + packing of a 512x2048 tensor.
  const Problem p = Make(1, kN, kK);
  for (auto _ : state) {
    LqqWeights w = QuantizeWeightsLqq(p.w);
    benchmark::DoNotOptimize(w.packed.data());
  }
}
BENCHMARK(BM_QuantizeWeightsLqq)->Unit(benchmark::kMillisecond);

void BM_PackDualMma(benchmark::State& state) {
  const Problem p = Make(1, kN, kK);
  const LqqWeights w = QuantizeWeightsLqq(p.w);
  for (auto _ : state) {
    DualMmaPackedWeights packed = PackDualMma(w);
    benchmark::DoNotOptimize(packed.regs.data());
  }
}
BENCHMARK(BM_PackDualMma)->Unit(benchmark::kMillisecond);

// --- per-provider variants (registered for every available provider) --------

void RegisterPerProviderBenchmarks() {
  for (const GemmProvider provider : AvailableGemmProviders()) {
    const std::string suffix = std::string("/") + GemmProviderName(provider);
    benchmark::RegisterBenchmark(
        ("BM_GemmW4A8Liquid" + suffix).c_str(),
        [provider](benchmark::State& state) {
          const Problem p = Make(kM, kN, kK);
          const LqqWeights w = QuantizeWeightsLqq(p.w);
          for (auto _ : state) {
            MatrixF y = GemmW4A8Liquid(p.xq, w, provider);
            benchmark::DoNotOptimize(y.data());
          }
        })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("BM_GemmW4A8Qserve" + suffix).c_str(),
        [provider](benchmark::State& state) {
          const Problem p = Make(kM, kN, kK);
          const QserveWeights w = QuantizeWeightsQserve(p.w);
          for (auto _ : state) {
            MatrixF y = GemmW4A8Qserve(p.xq, w, provider);
            benchmark::DoNotOptimize(y.data());
          }
        })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("BM_GemmW8A8" + suffix).c_str(),
        [provider](benchmark::State& state) {
          const Problem p = Make(kM, kN, kK);
          const W8A8Weights w = QuantizeWeightsW8A8(p.w);
          for (auto _ : state) {
            MatrixF y = GemmW8A8(p.xq, w, provider);
            benchmark::DoNotOptimize(y.data());
          }
        })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("BM_GemmFp32" + suffix).c_str(),
        [provider](benchmark::State& state) {
          const Problem p = Make(kM, kN, kK);
          for (auto _ : state) {
            MatrixF y = GemmReference(p.x, p.w, provider);
            benchmark::DoNotOptimize(y.data());
          }
        })
        ->Unit(benchmark::kMillisecond);
  }
}

// --- gate mode ---------------------------------------------------------------

double BestOfMs(const Problem& p, const LqqWeights& w, GemmProvider provider,
                int reps) {
  // MinSecondsOver runs one untimed warm-up call (page faults, provider
  // resolution) before taking the min over `reps` timed calls.
  return 1e3 * MinSecondsOver(reps, [&] {
           MatrixF out = GemmW4A8Liquid(p.xq, w, provider);
           benchmark::DoNotOptimize(out.data());
         });
}

/// Gate: AVX2 must beat the scalar reference by >= 3x on the W4A8 hot kernel.
/// Returns the process exit code.
int CheckSpeedup() {
  if (!GemmProviderAvailable(GemmProvider::kAvx2)) {
    std::printf(
        "check-speedup: AVX2 provider unavailable on this machine/build; "
        "skipping (ok)\n");
    return 0;
  }
  const Problem p = Make(kM, kN, kK);
  const LqqWeights w = QuantizeWeightsLqq(p.w);
  constexpr int kReps = 30;
  const double ref_ms = BestOfMs(p, w, GemmProvider::kReference, kReps);
  const double avx2_ms = BestOfMs(p, w, GemmProvider::kAvx2, kReps);
  const double speedup = ref_ms / avx2_ms;
  std::printf(
      "check-speedup: BM_GemmW4A8Liquid %zux%zux%zu  reference=%.3fms  "
      "avx2=%.3fms  speedup=%.2fx (gate: >= 3x)\n",
      kM, kN, kK, ref_ms, avx2_ms, speedup);
  if (speedup < 3.0) {
    std::printf("check-speedup: FAIL — AVX2 below the 3x gate\n");
    return 1;
  }
  std::printf("check-speedup: OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-speedup") == 0) {
      return CheckSpeedup();
    }
  }
  RegisterPerProviderBenchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
