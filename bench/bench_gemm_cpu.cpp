// Functional CPU GEMM benchmark: measured wall-clock of the numerically
// verified kernels.  This is NOT a GPU performance claim — it is a second,
// executable witness that the LiquidQuant main loop (SWAR dequant + INT8
// MAC) does strictly less work per element than the QServe-style main loop,
// independent of the simulator.

#include <benchmark/benchmark.h>

#include "core/gemm/gemm.hpp"
#include "util/rng.hpp"

namespace {

using namespace liquid;

struct Problem {
  MatrixF x;
  MatrixF w;
  QuantizedActivations xq;
};

Problem Make(std::size_t m, std::size_t n, std::size_t k) {
  Rng rng(7);
  Problem p{MatrixF(m, k), MatrixF(n, k), {}};
  for (auto& v : p.x.Flat()) v = static_cast<float>(rng.Normal(0, 1));
  for (auto& v : p.w.Flat()) v = static_cast<float>(rng.Normal(0, 0.05));
  p.xq = QuantizeActivationsPerToken(p.x);
  return p;
}

constexpr std::size_t kM = 16;
constexpr std::size_t kN = 512;
constexpr std::size_t kK = 2048;

void BM_GemmW4A8Liquid(benchmark::State& state) {
  const Problem p = Make(kM, kN, kK);
  const LqqWeights w = QuantizeWeightsLqq(p.w);
  for (auto _ : state) {
    MatrixF y = GemmW4A8Liquid(p.xq, w);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_GemmW4A8Liquid)->Unit(benchmark::kMillisecond);

void BM_GemmW4A8Qserve(benchmark::State& state) {
  const Problem p = Make(kM, kN, kK);
  const QserveWeights w = QuantizeWeightsQserve(p.w);
  for (auto _ : state) {
    MatrixF y = GemmW4A8Qserve(p.xq, w);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_GemmW4A8Qserve)->Unit(benchmark::kMillisecond);

void BM_GemmW8A8(benchmark::State& state) {
  const Problem p = Make(kM, kN, kK);
  const W8A8Weights w = QuantizeWeightsW8A8(p.w);
  for (auto _ : state) {
    MatrixF y = GemmW8A8(p.xq, w);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_GemmW8A8)->Unit(benchmark::kMillisecond);

void BM_GemmFp32Reference(benchmark::State& state) {
  const Problem p = Make(kM, kN, kK);
  for (auto _ : state) {
    MatrixF y = GemmReference(p.x, p.w);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_GemmFp32Reference)->Unit(benchmark::kMillisecond);

void BM_QuantizeWeightsLqq(benchmark::State& state) {
  // Offline cost: two-level quantization + packing of a 512x2048 tensor.
  const Problem p = Make(1, kN, kK);
  for (auto _ : state) {
    LqqWeights w = QuantizeWeightsLqq(p.w);
    benchmark::DoNotOptimize(w.packed.data());
  }
}
BENCHMARK(BM_QuantizeWeightsLqq)->Unit(benchmark::kMillisecond);

void BM_PackDualMma(benchmark::State& state) {
  const Problem p = Make(1, kN, kK);
  const LqqWeights w = QuantizeWeightsLqq(p.w);
  for (auto _ : state) {
    DualMmaPackedWeights packed = PackDualMma(w);
    benchmark::DoNotOptimize(packed.regs.data());
  }
}
BENCHMARK(BM_PackDualMma)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
