// Section 3.3 "Implication on LLM Serving": tensor-core throughput grows
// faster than memory bandwidth, so the batch size needed to saturate the GPU
// keeps climbing — W8A8 moved from 156 (A100) to 300 (H100) — while W4A8
// halves the threshold on every part.  This bench prints the published
// trajectory plus projected future generations, and the KV-cache memory an
// operator must pin just to reach the compute-bound regime.

#include <cstdio>

#include "model/projection.hpp"
#include "serving/model_config.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace liquid;
using namespace liquid::model;

int main() {
  // Compute historically ~2x/generation, bandwidth ~1.3x.
  const auto generations = ProjectGenerations(3, 2.0, 1.3);
  const auto trend = TransitionTrend(generations);

  Table t("Section 3.3 — memory-to-compute transition batch size by GPU generation");
  t.SetHeader({"generation", "INT8 TOPS", "BW (TB/s)", "W8A8 batch*",
               "W4A8 batch*", "growth vs A100"});
  for (std::size_t i = 0; i < trend.size(); ++i) {
    t.AddRow({trend[i].generation,
              Format("%.0f", generations[i].int8_ops / 1e12),
              Format("%.1f", generations[i].mem_bw / 1e12),
              Format("%.0f", trend[i].w8a8_batch),
              Format("%.0f", trend[i].w4a8_batch),
              trend[i].ratio_vs_a100 > 0
                  ? Format("%.2fx", trend[i].ratio_vs_a100)
                  : "-"});
  }
  t.Print();

  // Operational consequence: KV bytes pinned to saturate the GPU.
  const auto model = serving::LlmConfig::Llama2_7B();
  Table k("KV cache pinned to reach compute-bound (LLaMA2-7B, 1536-token context)");
  k.SetHeader({"generation", "W8A8 (INT8 KV)", "W4A8 (INT8 KV)"});
  for (std::size_t i = 0; i < trend.size(); ++i) {
    const double per_token = model.KvBytesPerToken(8);
    k.AddRow({trend[i].generation,
              HumanBytes(KvBytesToSaturate(trend[i].w8a8_batch, 1536, per_token)),
              HumanBytes(KvBytesToSaturate(trend[i].w4a8_batch, 1536, per_token))});
  }
  k.Print();
  std::printf(
      "\nEvery projected generation pushes the W8A8 saturation batch ~1.5x\n"
      "higher; W4A8 permanently halves it — smaller batches mean lower\n"
      "request latency, less KV memory pinned, longer feasible sequences,\n"
      "and smaller blast radius per GPU fault (the paper's four operational\n"
      "arguments for high-performance W4A8 kernels).\n");
  return 0;
}
