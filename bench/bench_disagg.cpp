// Disaggregated prefill/decode serving study, two sweeps on a long-prompt-
// heavy mix (the regime where prefill/decode interference hurts most):
//
//  (1) Pool-ratio shootout at equal replica count: 6 unified replicas vs
//      prefill:decode splits 1:5 / 2:4 / 3:3 / 4:2 over an NVLink-class
//      interconnect.  The claim to verify (DistServe/Splitwise): moving
//      prefills off the decode pool tightens p99 TPOT — decode steps no
//      longer stall behind kilotoken prompts.
//
//  (2) Interconnect-bandwidth sweep at the best ratio, down to a dead link:
//      as bandwidth → 0 the migration budget rejects every transfer, the
//      coordinator decodes locally, and the fleet degrades gracefully to
//      unified-style serving instead of collapsing.
//
// Both tables report $/1M tokens from per-pool $/hour prices.  Exit status
// is nonzero if no disaggregated split beats the unified baseline's p99
// TPOT, so the bench doubles as a regression check.
//
// Usage: bench_disagg [--quick] [--seed N] [--trace-out PATH]
//                     [--metrics-out PATH] [--json-out PATH]
//   --quick runs a smaller trace for CI smoke; the telemetry/JSON sinks
//   capture the 2P:4D ratio run (see util/cli_flags.hpp for the full list).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "obs/prof/prof_sink.hpp"
#include "obs/telemetry_sink.hpp"
#include "util/cli_flags.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace liquid;
using namespace liquid::cluster;

namespace {

constexpr double kPrefillDollarsPerHour = 2.8;  // prefill pool: compute-bound
constexpr double kDecodeDollarsPerHour = 2.2;   // decode pool: bandwidth-bound

ReplicaSpec Replica(ReplicaRole role) {
  ReplicaSpec spec;
  spec.hw = simgpu::HardwareSpec::H800();
  spec.preset = serving::SystemPreset::LiquidServe();
  spec.model = serving::LlmConfig::Llama2_7B();
  spec.kv_pool_blocks = 4096;  // 64k tokens: room for several huge prompts
  spec.block_tokens = 16;
  spec.max_batch = 16;
  spec.role = role;
  // Chunked prefill is the prefill pool's default: a kilotoken prompt
  // advances one 2048-token chunk per iteration, so a newly arrived prompt
  // is never stuck behind a whole competing prefill (Sarathi-style).
  if (role == ReplicaRole::kPrefill) {
    spec.options.prefill_chunk_tokens = 2048;
  }
  spec.dollars_per_hour = role == ReplicaRole::kPrefill
                              ? kPrefillDollarsPerHour
                              : kDecodeDollarsPerHour;
  return spec;
}

std::vector<serving::TimedRequest> LongPromptMix(std::size_t count,
                                                 std::uint64_t seed) {
  serving::TraceConfig config;
  config.arrival_rate_per_s = 28.0;  // keeps a 6-replica fleet busy
  config.count = count;
  config.prompt_min = 2048;  // long-prompt-heavy: every prompt is kilotoken
  config.prompt_max = 8192;
  config.output_min = 32;
  config.output_max = 128;
  config.sessions = 32;
  return serving::GenerateTrace(config, seed);
}

/// --threads: worker count for every fleet in this bench (results are
/// identical to the serial oracle by the parallel runtime's contract).
std::size_t g_threads = 1;

FleetStats RunSplit(const std::vector<serving::TimedRequest>& trace,
                    std::size_t prefills, std::size_t decodes,
                    double bandwidth_gb_per_s,
                    obs::TraceRecorder* recorder = nullptr,
                    obs::MetricsRegistry* metrics = nullptr) {
  DisaggConfig disagg;
  disagg.interconnect.bandwidth_gb_per_s = bandwidth_gb_per_s;
  disagg.max_migration_seconds = 0.25;
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, {}, {}, {}, disagg);
  sim.SetThreads(g_threads);
  for (std::size_t i = 0; i < prefills; ++i) {
    sim.AddReplica(Replica(ReplicaRole::kPrefill));
  }
  for (std::size_t i = 0; i < decodes; ++i) {
    sim.AddReplica(Replica(ReplicaRole::kDecode));
  }
  sim.AttachTelemetry(recorder, metrics);
  return sim.Run(trace);
}

FleetStats RunUnified(const std::vector<serving::TimedRequest>& trace,
                      std::size_t replicas) {
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding);
  sim.SetThreads(g_threads);
  for (std::size_t i = 0; i < replicas; ++i) {
    ReplicaSpec spec = Replica(ReplicaRole::kUnified);
    sim.AddReplica(spec);
  }
  return sim.Run(trace);
}

void AddRow(Table& table, const std::string& label, const FleetStats& s) {
  table.AddRow({label, HumanTime(s.ttft.p50), HumanTime(s.ttft.p99),
                HumanTime(s.tpot.p50), HumanTime(s.tpot.p99),
                std::to_string(s.completed),
                std::to_string(s.disagg.migrated_requests),
                std::to_string(s.disagg.local_decode_fallbacks),
                Format("$%.2f", s.dollars_per_m_tokens)});
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags = ParseCliFlags(argc, argv);
  obs::MaybeEnableProfiler(flags);
  g_threads = flags.threads;
  const std::size_t count = flags.quick ? 80 : 300;
  const auto trace = LongPromptMix(count, flags.seed_set ? flags.seed : 2025);
  const double nvlink = 400.0;  // GB/s per directed link
  obs::TraceRecorder recorder;
  obs::MetricsRegistry metrics;
  const bool telemetry =
      flags.WantsTrace() || flags.WantsMetrics() || !flags.json_out.empty();

  Table ratios(
      "Prefill:decode pool ratio, 6 replicas, kilotoken prompts, 400 GB/s");
  ratios.SetHeader({"fleet", "p50 TTFT", "p99 TTFT", "p50 TPOT", "p99 TPOT",
                    "done", "migrated", "local", "$/1Mtok"});
  const FleetStats unified = RunUnified(trace, 6);
  AddRow(ratios, "unified x6", unified);
  FleetStats best;
  std::string best_label;
  const std::size_t splits[][2] = {{1, 5}, {2, 4}, {3, 3}, {4, 2}};
  for (const auto& split : splits) {
    // The telemetry sinks capture the 2P:4D run (the README's best split).
    const bool capture = telemetry && split[0] == 2;
    const FleetStats s =
        RunSplit(trace, split[0], split[1], nvlink,
                 capture ? &recorder : nullptr, capture ? &metrics : nullptr);
    if (capture && !flags.json_out.empty()) {
      if (WriteFleetStatsJson(s, flags.json_out)) {
        std::printf("wrote fleet stats: %s\n", flags.json_out.c_str());
      } else {
        std::fprintf(stderr, "FAILED to write %s\n", flags.json_out.c_str());
        return 1;
      }
    }
    const std::string label =
        Format("%zuP : %zuD", split[0], split[1]);
    AddRow(ratios, label, s);
    if (best_label.empty() || s.tpot.p99 < best.tpot.p99) {
      best = s;
      best_label = label;
    }
  }
  ratios.Print();
  std::printf("\n");

  Table bandwidth(Format("Interconnect sweep at %s (graceful degradation)",
                         best_label.c_str()));
  bandwidth.SetHeader({"link GB/s", "p50 TTFT", "p99 TTFT", "p50 TPOT",
                       "p99 TPOT", "done", "migrated", "local", "$/1Mtok"});
  std::size_t best_prefills = 2, best_decodes = 4;
  for (const auto& split : splits) {
    if (best_label == Format("%zuP : %zuD", split[0], split[1])) {
      best_prefills = split[0];
      best_decodes = split[1];
    }
  }
  const double links[] = {900.0, 400.0, 100.0, 25.0, 2.0, 0.5, 0.0};
  for (const double link : links) {
    const FleetStats s = RunSplit(trace, best_prefills, best_decodes, link);
    AddRow(bandwidth, Format("%g", link), s);
  }
  bandwidth.Print();

  std::printf(
      "\nmigration stall p50/p99 at %s, 400 GB/s: %s / %s over %.1f MB "
      "migrated KV\n",
      best_label.c_str(), HumanTime(best.disagg.migration_seconds.p50).c_str(),
      HumanTime(best.disagg.migration_seconds.p99).c_str(),
      best.disagg.migrated_kv_bytes / 1e6);
  std::printf("interference-free decode TPOT p99 (migrated requests): %s\n",
              HumanTime(best.disagg.migrated_tpot.p99).c_str());

  const bool win = best.tpot.p99 < unified.tpot.p99;
  std::printf("\n%s p99 TPOT %s vs unified %s: %s\n", best_label.c_str(),
              HumanTime(best.tpot.p99).c_str(),
              HumanTime(unified.tpot.p99).c_str(), win ? "WIN" : "LOSS");
  if (!obs::WriteProfile(flags)) return 1;
  if (!obs::WriteTelemetry(flags, recorder, metrics)) return 1;
  return win ? 0 : 1;
}
