#!/usr/bin/env python3
"""Bench-regression gate: compare a bench JSON artifact against its committed
baseline (bench/baselines/*.json).

The simulator is byte-deterministic under a fixed seed (the telemetry golden
hashes pin this cross-platform), so everything the artifact reports about
*simulated* work — request counters, percentiles, events_processed — must
match the baseline: integers exactly, floats within a small relative
tolerance.  Host wall-clock measurements (wall_seconds, events_per_sec, ...)
legitimately vary machine to machine; they are reported for trend-watching
but never gated.

Usage:
    compare_baselines.py BASELINE CURRENT [BASELINE CURRENT ...]

Exits nonzero when any gated metric drifts.  Only the Python standard
library is used.
"""

import json
import sys

# Dotted-path suffixes measured on the host wall clock: report, never gate.
# speedup_vs_1_thread is a ratio of two wall-clock rates (the thread_scaling
# section of bench_sim_throughput) — the CI perf floor for it lives in the
# bench's own --check-speedup gate, which knows to skip on small hosts.
WALL_CLOCK_SUFFIXES = (
    "wall_seconds",
    "events_per_sec",
    "sim_seconds_per_wall_second",
    "wall_seconds_per_sim_hour",
    "speedup_vs_1_thread",
)

# Per-metric relative tolerances, matched on the dotted-path suffix; the
# longest matching suffix wins.  The default covers cross-platform printf
# round-trip noise; widen a specific metric here (with a comment saying why)
# rather than loosening the default.
REL_TOLERANCES = {
    "": 1e-9,  # default for every float
}


def rel_tolerance(path):
    best_suffix, best_tol = None, None
    for suffix, tol in REL_TOLERANCES.items():
        if path.endswith(suffix):
            if best_suffix is None or len(suffix) > len(best_suffix):
                best_suffix, best_tol = suffix, tol
    return best_tol


def is_wall_clock(path):
    return any(path.endswith(s) for s in WALL_CLOCK_SUFFIXES)


def match_list_items(base, cur):
    """Pairs list elements: by 'name' key when every element has one
    (order-independent), else by index."""
    if (base and cur and all(isinstance(x, dict) and "name" in x for x in base)
            and all(isinstance(x, dict) and "name" in x for x in cur)):
        base_by = {x["name"]: x for x in base}
        cur_by = {x["name"]: x for x in cur}
        for name in sorted(set(base_by) | set(cur_by)):
            yield f"[{name}]", base_by.get(name), cur_by.get(name)
        return
    for i in range(max(len(base), len(cur))):
        yield f"[{i}]", base[i] if i < len(base) else None, \
            cur[i] if i < len(cur) else None


def compare(base, cur, path, findings):
    """Appends (path, baseline, current, status) rows.  Status is 'ok',
    'wall' (reported, ungated), or 'FAIL'."""
    if base is None or cur is None:
        findings.append((path, base, cur, "FAIL"))
        return
    if isinstance(base, dict) and isinstance(cur, dict):
        for key in sorted(set(base) | set(cur)):
            sub = f"{path}.{key}" if path else key
            compare(base.get(key), cur.get(key), sub, findings)
        return
    if isinstance(base, list) and isinstance(cur, list):
        for label, b, c in match_list_items(base, cur):
            compare(b, c, path + label, findings)
        return
    if isinstance(base, bool) or isinstance(cur, bool) \
            or isinstance(base, str) or isinstance(cur, str):
        findings.append((path, base, cur, "ok" if base == cur else "FAIL"))
        return
    if isinstance(base, (int, float)) and isinstance(cur, (int, float)):
        if is_wall_clock(path):
            findings.append((path, base, cur, "wall"))
            return
        if isinstance(base, int) and isinstance(cur, int):
            findings.append((path, base, cur, "ok" if base == cur else "FAIL"))
            return
        tol = rel_tolerance(path)
        scale = max(abs(base), abs(cur), 1e-300)
        ok = abs(base - cur) <= tol * scale
        findings.append((path, base, cur, "ok" if ok else "FAIL"))
        return
    findings.append((path, base, cur, "FAIL"))  # type mismatch


def fmt(value):
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def compare_pair(baseline_path, current_path):
    with open(baseline_path) as f:
        base = json.load(f)
    with open(current_path) as f:
        cur = json.load(f)
    findings = []
    compare(base, cur, "", findings)

    failures = [f for f in findings if f[3] == "FAIL"]
    walls = [f for f in findings if f[3] == "wall"]
    gated = len(findings) - len(walls)

    print(f"== {current_path} vs {baseline_path}: "
          f"{gated} gated metrics, {len(walls)} wall-clock (ungated), "
          f"{len(failures)} failures ==")
    for path, b, c, _ in walls:
        drift = ""
        if isinstance(b, (int, float)) and b:
            drift = f"  ({100.0 * (c - b) / b:+.1f}%)"
        print(f"  wall  {path}: baseline {fmt(b)} -> current {fmt(c)}{drift}")
    for path, b, c, _ in failures:
        print(f"  FAIL  {path}: baseline {fmt(b)} -> current {fmt(c)}")
    return not failures


def main(argv):
    if len(argv) < 2 or len(argv) % 2 != 0:
        print(__doc__, file=sys.stderr)
        return 2
    ok = True
    for i in range(0, len(argv), 2):
        ok &= compare_pair(argv[i], argv[i + 1])
    print("bench-regression gate:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
