// Prefix-cache-aware placement study: shared-prefix mixture vs hit rate vs
// p99 TTFT.
//
// The workload models few-shot / system-preamble traffic: a configurable
// fraction of every prompt is a preamble shared across sessions (8 distinct
// preambles spread over 32 sessions), the rest is unique content.  Session
// stickiness (`affinity`) only ever exploits within-session locality; the
// `prefix_aware` preset scores each replica's resident PrefixIndex against
// the request's block signature, so it packs same-preamble work together and
// the scheduler skips the shared blocks' prefill compute.
//
// Sweep: shared fraction 0% (fully disjoint) → 75%, affinity vs prefix_aware
// at equal fleet size.  The claims the exit status enforces:
//   * on a >= 50% shared-prefix mix, prefix_aware beats affinity on p99 TTFT
//     and saves strictly more prefill tokens;
//   * on the fully disjoint mix it stays within noise of affinity (no tax
//     for carrying the index around).
//
// Usage: bench_prefix_routing [--quick] [--seed N] [--trace-out PATH]
//                             [--metrics-out PATH] [--json-out PATH]
//   --quick runs a smaller trace for CI; the telemetry/JSON sinks capture
//   the prefix_aware run on the 50% shared mix (see util/cli_flags.hpp).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "obs/prof/prof_sink.hpp"
#include "obs/telemetry_sink.hpp"
#include "util/cli_flags.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace liquid;
using namespace liquid::cluster;

namespace {

ReplicaSpec UnifiedReplica() {
  ReplicaSpec spec;
  spec.hw = simgpu::HardwareSpec::H800();
  spec.preset = serving::SystemPreset::LiquidServe();
  spec.model = serving::LlmConfig::Llama2_7B();
  spec.kv_pool_blocks = 4096;
  spec.block_tokens = 16;  // == TraceConfig::prefix_block_tokens
  spec.max_batch = 16;
  spec.dollars_per_hour = 2.2;
  return spec;
}

std::vector<serving::TimedRequest> SharedPrefixMix(double shared_fraction,
                                                   std::size_t count,
                                                   std::uint64_t seed) {
  serving::TraceConfig config;
  config.arrival_rate_per_s = 30.0;  // queues form: placement decides TTFT
  config.count = count;
  config.prompt_min = 1024;  // preambles only matter on real prompts
  config.prompt_max = 4096;
  config.output_min = 32;
  config.output_max = 128;
  config.sessions = 32;
  config.shared_prefix_fraction = shared_fraction;
  config.prefix_groups = 8;  // more preambles than replicas: placement matters
  config.prefix_block_tokens = 16;
  return serving::GenerateTrace(config, seed);
}

/// --threads: worker count for every fleet in this bench (results are
/// identical to the serial oracle by the parallel runtime's contract).
std::size_t g_threads = 1;

FleetStats RunPreset(RoutePolicy policy,
                     const std::vector<serving::TimedRequest>& trace,
                     std::size_t replicas,
                     obs::TraceRecorder* recorder = nullptr,
                     obs::MetricsRegistry* metrics = nullptr) {
  ClusterSimulator sim(policy);
  sim.SetThreads(g_threads);
  for (std::size_t i = 0; i < replicas; ++i) {
    sim.AddReplica(UnifiedReplica());
  }
  sim.AttachTelemetry(recorder, metrics);
  return sim.Run(trace);
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags = ParseCliFlags(argc, argv);
  obs::MaybeEnableProfiler(flags);
  g_threads = flags.threads;
  const std::size_t count = flags.quick ? 100 : 300;
  const std::uint64_t seed = flags.seed_set ? flags.seed : 7;
  const std::size_t replicas = 4;
  const double fractions[] = {0.0, 0.25, 0.5, 0.75};
  obs::TraceRecorder recorder;
  obs::MetricsRegistry metrics;
  const bool telemetry =
      flags.WantsTrace() || flags.WantsMetrics() || !flags.json_out.empty();

  Table table(
      "Shared-prefix mixture sweep, 4 unified replicas, prompts 1-4k tokens");
  table.SetHeader({"shared", "preset", "p50 TTFT", "p99 TTFT", "hit %",
                   "tokens saved", "done", "p99 TPOT"});

  bool shared_win = true;   // prefix_aware must win every >= 50% row
  bool disjoint_ok = true;  // and tie the 0% row
  for (const double fraction : fractions) {
    const auto trace = SharedPrefixMix(fraction, count, seed);
    const FleetStats affinity =
        RunPreset(RoutePolicy::kSessionAffinity, trace, replicas);
    // The telemetry sinks capture the prefix_aware run on the 50% mix — the
    // row where prefix-hit events actually fire.
    const bool capture = telemetry && fraction == 0.5;
    const FleetStats prefix =
        RunPreset(RoutePolicy::kPrefixAware, trace, replicas,
                  capture ? &recorder : nullptr, capture ? &metrics : nullptr);
    if (capture && !flags.json_out.empty()) {
      if (WriteFleetStatsJson(prefix, flags.json_out)) {
        std::printf("wrote fleet stats: %s\n", flags.json_out.c_str());
      } else {
        std::fprintf(stderr, "FAILED to write %s\n", flags.json_out.c_str());
        return 1;
      }
    }
    for (const auto& [label, s] :
         {std::pair<const char*, const FleetStats&>{"affinity", affinity},
          {"prefix_aware", prefix}}) {
      table.AddRow({Format("%.0f%%", 100.0 * fraction), label,
                    HumanTime(s.ttft.p50), HumanTime(s.ttft.p99),
                    Format("%.1f%%", 100.0 * s.prefix_hit_ratio),
                    WithCommas(static_cast<long long>(s.prefill_tokens_saved)),
                    std::to_string(s.completed), HumanTime(s.tpot.p99)});
    }
    if (fraction >= 0.5) {
      shared_win &= prefix.ttft.p99 < affinity.ttft.p99 &&
                    prefix.prefill_tokens_saved > affinity.prefill_tokens_saved;
    }
    if (fraction == 0.0) {
      // "Within noise": no shared blocks exist, so prefix_aware degenerates
      // to stickiness + load and must not regress the tail materially.
      disjoint_ok &= prefix.ttft.p99 <= affinity.ttft.p99 * 1.15;
    }
  }
  table.Print();

  std::printf(
      "\nprefix_aware on >=50%% shared mixes: %s; disjoint parity: %s\n",
      shared_win ? "WIN" : "LOSS", disjoint_ok ? "OK" : "REGRESSED");
  if (!obs::WriteProfile(flags)) return 1;
  if (!obs::WriteTelemetry(flags, recorder, metrics)) return 1;
  return shared_win && disjoint_ok ? 0 : 1;
}
