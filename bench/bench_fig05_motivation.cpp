// Figure 5 reproduction: per-layer GEMM latency during decoding on
// LLaMA2-7B and Mixtral-8x7B, batch sizes 4..256, for FP16 / W8A8 / FP8 /
// W4A16 and the *pre-LiquidGEMM* W4A8 state of the art (QServe).
//
// The paper's motivating observation to verify: QServe's W4A8 tracks W8A8 at
// small batch (instead of being 2x faster) and becomes ~2x *slower* than
// W8A8 — even slower than FP16/W4A16 — at batch >= 128.

#include <cstdio>

#include "bench_common.hpp"
#include "serving/model_config.hpp"

using namespace liquid;
using namespace liquid::bench;

namespace {

void PrintModel(const serving::LlmConfig& model) {
  const std::vector<simgpu::KernelKind> kernels = {
      simgpu::KernelKind::kTrtFp16, simgpu::KernelKind::kTrtW8A8,
      simgpu::KernelKind::kTrtFp8, simgpu::KernelKind::kTrtW4A16,
      simgpu::KernelKind::kQServeW4A8};

  Table t(Format("Figure 5 — per-layer GEMM latency (us), %s",
                 model.name.c_str()));
  std::vector<std::string> header{"batch"};
  for (const auto k : kernels) header.push_back(simgpu::ToString(k));
  header.push_back("W4A8/W8A8");
  t.SetHeader(header);

  for (const std::size_t m : BatchSweep()) {
    std::vector<std::string> row{std::to_string(m)};
    double qserve = 0;
    double w8a8 = 0;
    for (const auto k : kernels) {
      const double s = LayerGemmSeconds(model, k, m);
      if (k == simgpu::KernelKind::kQServeW4A8) qserve = s;
      if (k == simgpu::KernelKind::kTrtW8A8) w8a8 = s;
      row.push_back(Us(s));
    }
    row.push_back(Format("%.2fx", qserve / w8a8));
    t.AddRow(row);
  }
  t.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "Reproduction of Figure 5 (motivation): the roofline promises W4A8 2x\n"
      "over W8A8 in the memory-bound regime, but the pre-LiquidGEMM W4A8\n"
      "kernel only matches W8A8 there and falls to ~2x slower at batch 256.\n\n");
  PrintModel(serving::LlmConfig::Llama2_7B());
  PrintModel(serving::LlmConfig::Mixtral_8x7B());
  return 0;
}
