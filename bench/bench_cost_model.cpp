// Section 3.3 reproduction: the cost-model-derived design numbers —
// memory/compute transition batch sizes (150 for W4A8 and 300 for W8A8 on
// H100, 156 for W8A8 on A100), the dequantization instruction budget
// (alpha <= 5.07 memory-bound / 5.05 compute-bound at M = 150), and where the
// measured LQQ / QServe alphas land against those budgets.  Also covers the
// Section 5.4 (W X^T)^T tiling ablation through the cost model.

#include <cstdio>

#include "core/dequant/dequant.hpp"
#include "model/cost_model.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace liquid;
using namespace liquid::model;

int main() {
  const HardwareSpec h100 = simgpu::HardwareSpec::H100();
  const HardwareSpec a100 = simgpu::HardwareSpec::A100();

  {
    Table t("Memory-to-compute transition batch size (Section 3.3)");
    t.SetHeader({"hardware", "precision", "model-predicted", "paper"});
    t.AddRow({"H100", "W4A8",
              Format("%.0f", TransitionBatchSize(h100, PrecisionConfig::W4A8(h100, 0))),
              "150"});
    t.AddRow({"H100", "W8A8",
              Format("%.0f", TransitionBatchSize(h100, PrecisionConfig::W8A8(h100))),
              "300"});
    t.AddRow({"A100", "W8A8",
              Format("%.0f", TransitionBatchSize(a100, PrecisionConfig::W8A8(a100))),
              "156"});
    t.AddRow({"A100", "W4A8",
              Format("%.0f", TransitionBatchSize(a100, PrecisionConfig::W4A8(a100, 0))),
              "(78: half of W8A8)"});
    t.Print();
  }

  {
    const double budget_mem =
        AlphaBudgetMemoryBound(h100, PrecisionConfig::W4A8(h100, 0));
    const double budget_comp =
        AlphaBudgetComputeBound(h100, PrecisionConfig::W4A8(h100, 0), 150.0);
    Table t("Dequantization instruction budget alpha (H100, Section 3.3)");
    t.SetHeader({"quantity", "value", "paper"});
    t.AddRow({"budget, memory-bound (T_DQ <= T_LD)",
              Format("%.2f", budget_mem), "5.07"});
    t.AddRow({"budget, compute-bound at M=150 (T_DQ <= T_MMA)",
              Format("%.2f", budget_comp), "5.05"});
    t.AddRow({"LiquidQuant measured alpha", Format("%.3f", MeasureAlphaLqq()),
              "7/8 = 0.875"});
    t.AddRow({"QServe measured alpha (arith only)",
              Format("%.3f", MeasureAlphaQserve()), "-"});
    t.AddRow({"QServe alpha + layout aux (~1/elem)",
              Format("%.3f", MeasureAlphaQserve() + 1.0), "exceeds budget"});
    t.Print();
    std::printf(
        "LiquidQuant sits %0.1fx below the overlap budget; the QServe path\n"
        "(vsub4 lowering + conventional-layout loads) consumes nearly all of\n"
        "it, which is why its dequantization cannot hide behind TMA/MMA.\n\n",
        budget_mem / MeasureAlphaLqq());
  }

  {
    // Section 5.4: effect of letting the WGMMA n dimension track the batch
    // ((W X^T)^T) versus a fixed 64-row batch tile.
    Table t("Section 5.4 tiling: predicted GEMM time, LLaMA2-7B FFN N=11008 K=4096");
    t.SetHeader({"batch", "tile_m=64", "tile_m=128", "tile_m=256 (LiquidGEMM)"});
    const PrecisionConfig cfg = PrecisionConfig::W4A8(h100, MeasureAlphaLqq());
    for (const std::size_t m : {8u, 64u, 128u, 192u, 256u}) {
      std::vector<std::string> row{std::to_string(m)};
      for (const std::size_t tile : {64u, 128u, 256u}) {
        CostModelOptions opt;
        opt.tile_m = tile;
        const auto c = PredictGemm(h100, cfg, {m, 11008, 4096}, opt);
        row.push_back(HumanTime(c.total));
      }
      t.AddRow(row);
    }
    t.Print();
  }
  return 0;
}
