// Telemetry overhead gate: the same disaggregated chaos-free fleet run with
// and without a TraceRecorder + MetricsRegistry attached, interleaved A/B
// over several repetitions.  Tracing records POD events into a vector and
// metrics sample only at instants the simulation already visits, so the
// attached run should cost within noise of the detached one.
//
// The gate compares min-of-reps wall time (min is the standard low-noise
// estimator for "how fast can this go"): exit status is nonzero if the
// traced minimum exceeds 1.05x the untraced minimum, so CI fails the build
// when telemetry stops being cheap.
//
// Usage: bench_telemetry_overhead [--quick] [--seed N]

#include <cstdio>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"
#include "util/cli_flags.hpp"
#include "util/wall_timer.hpp"

using namespace liquid;
using namespace liquid::cluster;

namespace {

constexpr double kMaxSlowdown = 1.05;  // the <5% overhead budget CI enforces

ReplicaSpec Replica(ReplicaRole role) {
  ReplicaSpec spec;
  spec.hw = simgpu::HardwareSpec::H800();
  spec.preset = serving::SystemPreset::LiquidServe();
  spec.model = serving::LlmConfig::Llama2_7B();
  spec.kv_pool_blocks = 4096;
  spec.block_tokens = 16;
  spec.max_batch = 16;
  spec.role = role;
  if (role == ReplicaRole::kPrefill) {
    spec.options.prefill_chunk_tokens = 2048;
  }
  spec.dollars_per_hour = role == ReplicaRole::kPrefill ? 2.8 : 2.2;
  return spec;
}

/// One 2P:4D disaggregated run — the busiest telemetry path (arrival, route,
/// span, prefix, handoff, and migration events all fire).  Fresh simulator
/// per call so the A and B arms never share warmed state.
double RunOnce(const std::vector<serving::TimedRequest>& trace, bool traced,
               std::size_t& events, std::size_t& samples) {
  DisaggConfig disagg;
  disagg.interconnect.bandwidth_gb_per_s = 400.0;
  disagg.max_migration_seconds = 0.25;
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, {}, {}, {}, disagg);
  for (int i = 0; i < 2; ++i) sim.AddReplica(Replica(ReplicaRole::kPrefill));
  for (int i = 0; i < 4; ++i) sim.AddReplica(Replica(ReplicaRole::kDecode));

  obs::TraceRecorder recorder;
  obs::MetricsRegistry metrics;
  if (traced) sim.AttachTelemetry(&recorder, &metrics);

  const WallTimer timer;
  sim.Run(trace);
  const double seconds = timer.Seconds();
  if (traced) {
    events = recorder.events().size();
    samples = metrics.rows();
  }
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags = ParseCliFlags(argc, argv);
  const std::size_t count = flags.quick ? 120 : 400;
  const int reps = flags.quick ? 3 : 5;

  serving::TraceConfig config;
  config.arrival_rate_per_s = 28.0;
  config.count = count;
  config.prompt_min = 2048;
  config.prompt_max = 8192;
  config.output_min = 32;
  config.output_max = 128;
  config.sessions = 32;
  const auto trace =
      serving::GenerateTrace(config, flags.seed_set ? flags.seed : 7);

  std::size_t events = 0, samples = 0;
  double untraced_min = 0, traced_min = 0;
  // Warm-up pass (untimed gate-wise — it still lands in the min, which only
  // tightens), then interleave the arms so clock drift hits both equally.
  for (int rep = 0; rep < reps; ++rep) {
    const double plain = RunOnce(trace, false, events, samples);
    const double traced = RunOnce(trace, true, events, samples);
    untraced_min = rep == 0 ? plain : std::min(untraced_min, plain);
    traced_min = rep == 0 ? traced : std::min(traced_min, traced);
    std::printf("rep %d: untraced %.3fs, traced %.3fs\n", rep + 1, plain,
                traced);
  }

  const double slowdown = traced_min / untraced_min;
  std::printf(
      "\n%zu requests -> %zu trace events, %zu metric sample rows\n"
      "min wall time: untraced %.3fs, traced %.3fs -> %.2fx (budget %.2fx)\n",
      trace.size(), events, samples, untraced_min, traced_min, slowdown,
      kMaxSlowdown);

  const bool ok = slowdown <= kMaxSlowdown;
  std::printf("telemetry overhead gate: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
