// Figure 1c reproduction: roofline analysis of GEMM layers in LLM serving
// for FP16 / W8A8 / FP8 / W4A16 / W4A8 / W4A4 on A100 and H100.
//
// Prints, per precision: the peak tensor-core throughput, the roofline knee
// (in ops per weight element, the paper's intensity axis), the batch size at
// which GEMM crosses from memory- to compute-bound, and sampled points of
// the attainable-performance curve.

#include <cstdio>

#include "core/dequant/dequant.hpp"
#include "model/cost_model.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace liquid;
using namespace liquid::model;

namespace {

void PrintFor(const HardwareSpec& hw) {
  std::vector<PrecisionConfig> configs = {
      PrecisionConfig::Fp16(hw),
      PrecisionConfig::W8A8(hw),
      PrecisionConfig::Fp8(hw),
      PrecisionConfig::W4A16(hw),
      PrecisionConfig::W4A8(hw, MeasureAlphaLqq()),
      PrecisionConfig::W4A4(hw),
  };

  Table t(Format("Figure 1c roofline — %s (BW %.1f TB/s, CUDA INT32 %.1f TOPS)",
                 hw.name.c_str(), hw.mem_bw_bytes / 1e12,
                 hw.cuda_int32_ops / 1e12));
  t.SetHeader({"precision", "peak TOPS", "knee (ops/elem)",
               "transition batch", "supported"});
  for (const auto& cfg : configs) {
    if (cfg.mma_ops == 0) {
      t.AddRow({cfg.name, "-", "-", "-", "no (no tensor-core dtype)"});
      continue;
    }
    t.AddRow({cfg.name, Format("%.1f", cfg.mma_ops / 1e12),
              Format("%.1f", RooflineKneeIntensity(hw, cfg)),
              Format("%.0f", TransitionBatchSize(hw, cfg)), "yes"});
  }
  t.Print();

  // Sampled attainable-performance series (the curves of Figure 1c).
  Table s(Format("Attainable TOPS vs arithmetic intensity — %s",
                 hw.name.c_str()));
  std::vector<std::string> header{"ops/elem"};
  for (const auto& cfg : configs) {
    if (cfg.mma_ops > 0) header.push_back(cfg.name);
  }
  s.SetHeader(header);
  for (const double ai : {32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0}) {
    std::vector<std::string> row{Format("%.0f", ai)};
    for (const auto& cfg : configs) {
      if (cfg.mma_ops == 0) continue;
      const auto curve = RooflineCurve(hw, cfg, ai, 1);
      row.push_back(Format("%.0f", curve.back().attainable_ops / 1e12));
    }
    s.AddRow(row);
  }
  s.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "Reproduction of Figure 1c: W4A8's knee sits at half of W8A8's\n"
      "element intensity, so it reaches compute-bound at half the batch\n"
      "size; W4A4 is only attainable on A100 (Hopper dropped INT4 TCs).\n\n");
  PrintFor(simgpu::HardwareSpec::A100());
  PrintFor(simgpu::HardwareSpec::H100());
  return 0;
}
