// Accuracy study (paper Section 7.1: "Results show that LQQ preserves
// accuracy"; the full tables were deferred to the authors' tech report).
//
// Substitution (DESIGN.md): instead of 7B-70B checkpoints and WikiText2, we
// measure the quantization error of LiquidQuant against the QServe-style
// second level and a naive direct FP->UINT4 quantizer, on synthetic weight
// tensors with and without outlier structure, plus the end-to-end GEMM error
// through the full kernels.  LQQ preserving accuracy means: its SQNR matches
// QServe's (both are two-level group-wise schemes) and beats naive W4.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/api.hpp"
#include "core/gemm/gemm.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace liquid;

namespace {

/// Naive single-level group-wise FP -> UINT4 (no INT8 intermediate).
MatrixF NaiveW4RoundTrip(const MatrixF& w, std::size_t group) {
  MatrixF out(w.rows(), w.cols());
  for (std::size_t n = 0; n < w.rows(); ++n) {
    for (std::size_t g = 0; g < w.cols() / group; ++g) {
      float lo = w.At(n, g * group);
      float hi = lo;
      for (std::size_t j = 1; j < group; ++j) {
        lo = std::min(lo, w.At(n, g * group + j));
        hi = std::max(hi, w.At(n, g * group + j));
      }
      const float s = hi > lo ? (hi - lo) / 15.0f : 1.0f;
      for (std::size_t j = 0; j < group; ++j) {
        const float v = w.At(n, g * group + j);
        const int q = std::clamp(
            static_cast<int>(std::nearbyint((v - lo) / s)), 0, 15);
        out.At(n, g * group + j) = static_cast<float>(q) * s + lo;
      }
    }
  }
  return out;
}

void RunCase(const char* name, const MatrixF& w) {
  const MatrixF rec_lqq = DequantizeWeightsLqq(QuantizeWeightsLqq(w));
  const MatrixF rec_qs = DequantizeWeightsQserve(
      QuantizeWeightsQserve(w, {.group_size = 64}));
  const MatrixF rec_naive = NaiveW4RoundTrip(w, 64);

  Table t(Format("Weight quantization error — %s", name));
  t.SetHeader({"scheme", "SQNR (dB)", "rel Frobenius", "max abs err"});
  const auto row = [&](const char* scheme, const MatrixF& rec) {
    t.AddRow({scheme,
              Format("%.1f", SignalToQuantNoiseDb(w.Flat(), rec.Flat())),
              Format("%.4f", RelativeFrobeniusError(w.Flat(), rec.Flat())),
              Format("%.4f", MaxAbsError(w.Flat(), rec.Flat()))});
  };
  row("LiquidQuant (2-level, g=64)", rec_lqq);
  row("QServe-style (2-level, g=64)", rec_qs);
  row("naive W4 (1-level, g=64)", rec_naive);
  t.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "Accuracy substitution study (see DESIGN.md): LQQ preserves accuracy\n"
      "iff its reconstruction error matches the QServe two-level scheme it\n"
      "replaces.  Evaluated on synthetic LLM-like weight tensors.\n\n");
  Rng rng(2024);

  MatrixF gauss(256, 1024);
  for (auto& v : gauss.Flat()) v = static_cast<float>(rng.Normal(0, 0.05));
  RunCase("Gaussian weights (sigma 0.05)", gauss);

  MatrixF outlier(256, 1024);
  {
    const auto vals = rng.OutlierTensor(outlier.size(), 0.05, 0.005, 12.0);
    for (std::size_t i = 0; i < vals.size(); ++i) outlier.Flat()[i] = vals[i];
  }
  RunCase("outlier-heavy weights (0.5% x12 outliers)", outlier);

  // Group-size ablation: LiquidServe defaults to g=64 where QServe uses
  // g=128 (Section 7.1).  Smaller groups buy accuracy with more parameter
  // memory; the sweep quantifies the trade the authors made.
  {
    MatrixF w(256, 1024);
    for (auto& v : w.Flat()) v = static_cast<float>(rng.Normal(0, 0.05));
    Table t("LQQ group-size ablation (Gaussian weights)");
    t.SetHeader({"group size", "SQNR (dB)", "rel Frobenius",
                 "bits/element (incl. params)"});
    for (const std::size_t g : {32u, 64u, 128u, 256u}) {
      const LqqWeights q = QuantizeWeightsLqq(w, {.group_size = g});
      const MatrixF rec = DequantizeWeightsLqq(q);
      const double bits =
          8.0 * static_cast<double>(q.StorageBytes()) /
          static_cast<double>(w.size());
      t.AddRow({std::to_string(g),
                Format("%.1f", SignalToQuantNoiseDb(w.Flat(), rec.Flat())),
                Format("%.4f", RelativeFrobeniusError(w.Flat(), rec.Flat())),
                Format("%.2f", bits)});
    }
    t.Print();
    std::printf("\n");
  }

  // End-to-end GEMM error, with and without SmoothQuant smoothing.
  {
    const std::size_t m = 32, n = 256, k = 1024;
    MatrixF x(m, k);
    for (auto& v : x.Flat()) v = static_cast<float>(rng.Normal(0, 1));
    for (std::size_t i = 0; i < m; ++i) x.At(i, 11) *= 40.0f;  // act outlier
    MatrixF w(n, k);
    for (auto& v : w.Flat()) v = static_cast<float>(rng.Normal(0, 0.05));
    const MatrixF ref = GemmReference(x, w);

    const MatrixF y_plain = LiquidGemm(x, QuantizeWeightsLqq(w));
    const PreparedWeights prep = PrepareWeights(w, x, {});
    MatrixF xs = x;
    SmoothActivations(xs, prep.smooth_scale);
    const MatrixF y_smooth = LiquidGemm(xs, prep.weights);
    const auto xq = QuantizeActivationsPerToken(x);
    const MatrixF y_qs = GemmW4A8Qserve(xq, QuantizeWeightsQserve(w));

    Table t("End-to-end GEMM output error (outlier activations)");
    t.SetHeader({"pipeline", "rel Frobenius vs FP32"});
    t.AddRow({"LiquidGEMM (no smoothing)",
              Format("%.4f", RelativeFrobeniusError(ref.Flat(), y_plain.Flat()))});
    t.AddRow({Format("LiquidGEMM + SmoothQuant (alpha=%.1f)", prep.smooth_alpha),
              Format("%.4f", RelativeFrobeniusError(ref.Flat(), y_smooth.Flat()))});
    t.AddRow({"QServe kernel",
              Format("%.4f", RelativeFrobeniusError(ref.Flat(), y_qs.Flat()))});
    t.Print();
  }
  return 0;
}
