// Table 1 reproduction: peak token-generation throughput (tokens/s) of every
// system on every model, H800 with an 80 GB memory constraint, input/output
// lengths 1024/512, batch swept 1..256.  Cells print "tput (batch)" like the
// paper; OOM and NA entries reproduce the paper's feasibility pattern.
//
// Shape checks printed at the end: LiquidServe vs best baseline per model
// (paper: 0.98x-1.63x) and LiquidServe vs LiquidServe/wo (paper: 1.13x-1.98x).

#include <cstdio>

#include "bench_common.hpp"
#include "serving/system_preset.hpp"

using namespace liquid;
using namespace liquid::bench;
using serving::LlmConfig;
using serving::ServingEngine;
using serving::SystemPreset;

int main() {
  const auto models = LlmConfig::PaperModels();
  const auto systems = SystemPreset::PaperSystems();
  constexpr std::size_t kIn = 1024;
  constexpr std::size_t kOut = 512;

  // peak[system][model]
  std::vector<std::vector<ServingEngine::PeakResult>> peak(
      systems.size(), std::vector<ServingEngine::PeakResult>(models.size()));

  for (std::size_t s = 0; s < systems.size(); ++s) {
    for (std::size_t m = 0; m < models.size(); ++m) {
      const ServingEngine engine(H800(), systems[s], models[m]);
      peak[s][m] = engine.PeakThroughput(kIn, kOut);
    }
  }

  Table t("Table 1 — peak generation throughput (tokens/s), H800 80 GB, in/out 1024/512");
  std::vector<std::string> header{"System"};
  for (const auto& m : models) header.push_back(m.name);
  t.SetHeader(header);
  for (std::size_t s = 0; s < systems.size(); ++s) {
    std::vector<std::string> row{systems[s].name};
    for (std::size_t m = 0; m < models.size(); ++m) {
      const auto& p = peak[s][m];
      if (!p.supported) {
        row.push_back("NA");
      } else if (p.oom) {
        row.push_back("OOM");
      } else {
        row.push_back(Format("%s (%zu)",
                             WithCommas(static_cast<long long>(
                                 p.tokens_per_second)).c_str(),
                             p.batch));
      }
    }
    t.AddRow(row);
  }
  t.Print();

  // Speedup rows (paper's bottom row + the /wo ablation).
  const std::size_t liquid_idx = systems.size() - 1;   // LiquidServe
  const std::size_t wo_idx = systems.size() - 2;       // LiquidServe/wo
  Table sp("Speedups");
  std::vector<std::string> h2{"metric"};
  for (const auto& m : models) h2.push_back(m.name);
  sp.SetHeader(h2);
  std::vector<std::string> vs_best{"vs best baseline"};
  std::vector<std::string> vs_wo{"vs LiquidServe/wo"};
  for (std::size_t m = 0; m < models.size(); ++m) {
    double best = 0;
    for (std::size_t s = 0; s + 2 < systems.size(); ++s) {  // exclude ours
      best = std::max(best, peak[s][m].tokens_per_second);
    }
    const double ours = peak[liquid_idx][m].tokens_per_second;
    vs_best.push_back(best > 0 ? Format("%.2fx", ours / best) : "-");
    const double wo = peak[wo_idx][m].tokens_per_second;
    vs_wo.push_back(wo > 0 ? Format("%.2fx", ours / wo) : "-");
  }
  sp.AddRow(vs_best);
  sp.AddRow(vs_wo);
  sp.Print();
  std::printf(
      "Paper reference: speedup vs best baseline 0.98x-1.63x (ours loses\n"
      "only to TRT-FP8's Hopper FP8 attention on LLaMA3-8B/Mistral-7B);\n"
      "LiquidServe vs LiquidServe/wo 1.13x-1.98x; TRT-FP16 OOMs on\n"
      "LLaMA2-70B and Mixtral; TRT-W8A8 and QServe lack Mixtral support.\n");
  return 0;
}
