// Dequantization micro-benchmark (paper Sections 3.2, 5.3).
//
// Measures, on the actual SWAR implementations:
//   * the instruction count per dequantized element (alpha) of LiquidQuant
//     vs the QServe-style baseline — the machine-checked version of the
//     paper's "two instructions per four elements" claim; and
//   * real CPU ns/element of each path, a second, hardware-independent
//     witness that the LQQ sequence is fundamentally cheaper.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/dequant/dequant.hpp"
#include "core/gemm/gemm.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace liquid;

LqqWeights MakeLqq(std::size_t n, std::size_t k) {
  Rng rng(1);
  MatrixF w(n, k);
  for (auto& v : w.Flat()) v = static_cast<float>(rng.Normal(0, 0.05));
  return QuantizeWeightsLqq(w);
}

QserveWeights MakeQserve(std::size_t n, std::size_t k) {
  Rng rng(1);
  MatrixF w(n, k);
  for (auto& v : w.Flat()) v = static_cast<float>(rng.Normal(0, 0.05));
  return QuantizeWeightsQserve(w);
}

void BM_LqqDequantRow(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const LqqWeights w = MakeLqq(8, k);
  std::vector<std::int8_t> out(k);
  std::size_t row = 0;
  for (auto _ : state) {
    LqqDequantRow(w, row, out);
    benchmark::DoNotOptimize(out.data());
    row = (row + 1) % 8;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k));
}
BENCHMARK(BM_LqqDequantRow)->Arg(4096)->Arg(11008);

void BM_QserveDequantRow(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const QserveWeights w = MakeQserve(8, k);
  std::vector<std::int8_t> out(k);
  std::size_t row = 0;
  for (auto _ : state) {
    QserveDequantRow(w, row, out);
    benchmark::DoNotOptimize(out.data());
    row = (row + 1) % 8;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k));
}
BENCHMARK(BM_QserveDequantRow)->Arg(4096)->Arg(11008);

void BM_LqqDequantRegister(benchmark::State& state) {
  // The kernel-inner-loop unit: one packed register (8 elements).
  std::uint32_t reg = 0x12345678u;
  for (auto _ : state) {
    const Dequanted8 d = LqqDequant8(reg, 16, 100);
    benchmark::DoNotOptimize(d);
    reg += 0x01010101u;
  }
}
BENCHMARK(BM_LqqDequantRegister);

void BM_QserveDequantRegister(benchmark::State& state) {
  std::uint32_t reg = 0x12345678u;
  for (auto _ : state) {
    const Dequanted8 d = QserveDequant8(reg, 16, 100);
    benchmark::DoNotOptimize(d);
    reg += 0x01010101u;
  }
}
BENCHMARK(BM_QserveDequantRegister);

void RegisterFusedDequantDotBenchmarks() {
  // GEMV (M=1) through each GEMM provider: at batch 1 the main loop is
  // dominated by weight dequantization, so ns/element here is the fused
  // dequant+dot cost — the scalar rows above vs the AVX2 provider's
  // pshufb-LUT fused row dequant.
  for (const GemmProvider provider : AvailableGemmProviders()) {
    benchmark::RegisterBenchmark(
        (std::string("BM_FusedLqqDequantDotGemv/") +
         GemmProviderName(provider))
            .c_str(),
        [provider](benchmark::State& state) {
          constexpr std::size_t kN = 512, kK = 4096;
          Rng rng(2);
          MatrixF x(1, kK);
          for (auto& v : x.Flat()) v = static_cast<float>(rng.Normal(0, 1));
          const QuantizedActivations xq = QuantizeActivationsPerToken(x);
          const LqqWeights w = MakeLqq(kN, kK);
          for (auto _ : state) {
            MatrixF y = GemmW4A8Liquid(xq, w, provider);
            benchmark::DoNotOptimize(y.data());
          }
          state.SetItemsProcessed(
              static_cast<std::int64_t>(state.iterations()) *
              static_cast<std::int64_t>(kN * kK));
        });
  }
}

void PrintInstructionMix() {
  IsaCounter lqq;
  (void)LqqDequant8(0x12345678u, 16, 100, &lqq);
  IsaCounter qserve;
  (void)QserveDequant8(0x12345678u, 16, 100, &qserve);

  Table t("Dequantization instruction cost per packed register (8 elements)");
  t.SetHeader({"scheme", "logic", "shift", "imad", "total",
               "alpha (instr/elem)", "alpha budget (H100)"});
  t.AddRow({"LiquidQuant", std::to_string(lqq.logic),
            std::to_string(lqq.shift), std::to_string(lqq.imad),
            std::to_string(lqq.Total()), Format("%.3f", MeasureAlphaLqq()),
            "5.07"});
  t.AddRow({"QServe", std::to_string(qserve.logic),
            std::to_string(qserve.shift), std::to_string(qserve.imad),
            std::to_string(qserve.Total()),
            Format("%.3f", MeasureAlphaQserve()), "5.07"});
  t.Print();
  std::printf(
      "LiquidQuant: 3 unpack + 2x(IMAD+XOR) = 7 instructions / 8 elements\n"
      "(paper Section 5.3: \"eight elements are dequantized with only seven\n"
      "instructions\"); QServe pays the vsub4 lowering on every register.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintInstructionMix();
  RegisterFusedDequantDotBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
