// Figure 13 reproduction: ablation of LiquidGEMM's two techniques.  Starting
// from the W4A8 baseline (QServe-style dequant, serial pipeline), enable
// LQQ; then enable either the explicit coarse-grained pipeline (ExCP) or the
// implicit fine-grained pipeline (ImFP).  Speedups are relative to baseline.
//
// Shapes to verify: LQQ helps in the compute-bound regime (up to ~1.29x in
// the paper); ExCP *hurts* at small batch (round trip + sync) and helps at
// large batch; ImFP improves at every batch size and dominates overall.

#include <cstdio>

#include "bench_common.hpp"
#include "serving/model_config.hpp"

using namespace liquid;
using namespace liquid::bench;

namespace {

void PrintModel(const serving::LlmConfig& model) {
  Table t(Format("Figure 13 — ablation speedup over W4A8 baseline, %s",
                 model.name.c_str()));
  t.SetHeader({"batch", "Baseline", "+LQQ", "+LQQ+ExCP", "+LQQ+ImFP"});
  for (const std::size_t m : BatchSweep()) {
    const double base =
        LayerGemmSeconds(model, simgpu::KernelKind::kBaselineW4A8, m);
    const double lqq =
        LayerGemmSeconds(model, simgpu::KernelKind::kLiquidW4A8Serial, m);
    const double excp =
        LayerGemmSeconds(model, simgpu::KernelKind::kLiquidW4A8ExCP, m);
    const double imfp =
        LayerGemmSeconds(model, simgpu::KernelKind::kLiquidW4A8, m);
    t.AddRow({std::to_string(m), "1.00x", Format("%.2fx", base / lqq),
              Format("%.2fx", base / excp), Format("%.2fx", base / imfp)});
  }
  t.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "Reproduction of Figure 13: LQQ removes dequant arithmetic from the\n"
      "critical path; ExCP pays RF<->SMEM round trips and warp-group syncs\n"
      "(negative at small batch); ImFP overlaps dequant with MMA across\n"
      "compute warp groups with hardware-arbitrated tasks and wins at every\n"
      "batch size — most on the grouped (MoE) GEMMs.\n\n");
  PrintModel(serving::LlmConfig::Llama2_7B());
  PrintModel(serving::LlmConfig::Llama2_13B());
  PrintModel(serving::LlmConfig::Llama2_70B());
  PrintModel(serving::LlmConfig::Mixtral_8x7B());
  return 0;
}
