// Simulator-throughput benchmark: how fast does the simulator itself run?
// Replays a large generated trace of short-prompt requests through two
// fleets — 6 unified replicas, and a 2P:4D disaggregated split over an
// NVLink-class link (the busiest code path: routing, chunked prefill,
// handoff planning, KV migration, decode) — and reports the host-side cost:
// events processed (engine iterations + fleet events), events/sec,
// sim-seconds per wall-second, and wall-seconds per simulated hour.
//
// The JSON artifact is the unit CI's bench-regression tracking consumes:
// `bench/compare_baselines.py` checks the deterministic counters
// (events_processed, completed, ...) exactly and reports — without gating —
// the wall-clock rates, so a change that silently makes the simulator do
// more work per request fails the build even on noisy CI hosts.
//
// Exit status is nonzero if either fleet breaks request conservation
// (completed + dropped + rejected + lost != submitted + retried) or
// processes zero events, so the bench doubles as a large-trace soak test.
//
// Usage: bench_sim_throughput [--quick] [--seed N] [--requests N]
//                             [--json-out PATH] [--profile-out BASE]
//   --quick replays 100k requests (CI-sized); the default is 1M.
//   --requests N overrides both.  --profile-out enables the wall-clock
//   profiler for the runs and writes BASE.txt/.csv/.folded/... on exit.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "obs/prof/prof_sink.hpp"
#include "util/cli_flags.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace liquid;
using namespace liquid::cluster;

namespace {

ReplicaSpec Replica(ReplicaRole role) {
  ReplicaSpec spec;
  spec.hw = simgpu::HardwareSpec::H800();
  spec.preset = serving::SystemPreset::LiquidServe();
  spec.model = serving::LlmConfig::Llama2_7B();
  spec.kv_pool_blocks = 4096;
  spec.block_tokens = 16;
  spec.max_batch = 16;
  spec.role = role;
  if (role == ReplicaRole::kPrefill) {
    spec.options.prefill_chunk_tokens = 2048;
  }
  spec.dollars_per_hour = role == ReplicaRole::kPrefill ? 2.8 : 2.2;
  return spec;
}

/// Short-prompt interactive mix: per-request work is small, so the request
/// count (not prompt length) dominates and the fleet-event machinery —
/// routing, admission, retirement — gets exercised at volume.
std::vector<serving::TimedRequest> ShortPromptMix(std::size_t count,
                                                  std::uint64_t seed) {
  serving::TraceConfig config;
  config.arrival_rate_per_s = 120.0;
  config.count = count;
  config.prompt_min = 128;
  config.prompt_max = 1024;
  config.output_min = 16;
  config.output_max = 64;
  config.sessions = 256;
  return serving::GenerateTrace(config, seed);
}

FleetStats RunUnified(const std::vector<serving::TimedRequest>& trace) {
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding);
  for (int i = 0; i < 6; ++i) sim.AddReplica(Replica(ReplicaRole::kUnified));
  return sim.Run(trace);
}

FleetStats RunDisagg(const std::vector<serving::TimedRequest>& trace) {
  DisaggConfig disagg;
  disagg.interconnect.bandwidth_gb_per_s = 400.0;
  disagg.max_migration_seconds = 0.25;
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, {}, {}, {}, disagg);
  for (int i = 0; i < 2; ++i) sim.AddReplica(Replica(ReplicaRole::kPrefill));
  for (int i = 0; i < 4; ++i) sim.AddReplica(Replica(ReplicaRole::kDecode));
  return sim.Run(trace);
}

bool Conserved(const FleetStats& s) {
  return s.completed + s.dropped + s.rejected_requests + s.lost_requests ==
         s.submitted + s.retried_requests;
}

void AddRow(Table& table, const std::string& name, const FleetStats& s) {
  const SimThroughput& t = s.sim_throughput;
  table.AddRow({name, WithCommas(t.events_processed),
                WithCommas(t.engine_iterations), WithCommas(t.fleet_events),
                Format("%.1f", t.sim_seconds), Format("%.3f", t.wall_seconds),
                WithCommas(static_cast<std::uint64_t>(t.events_per_sec)),
                Format("%.3f", t.wall_seconds_per_sim_hour)});
}

void WriteFleetJson(JsonWriter& w, const std::string& name,
                    const FleetStats& s) {
  const SimThroughput& t = s.sim_throughput;
  w.BeginObject();
  w.Key("name").String(name);
  w.Key("submitted").Number(static_cast<std::uint64_t>(s.submitted));
  w.Key("completed").Number(static_cast<std::uint64_t>(s.completed));
  w.Key("events_processed").Number(t.events_processed);
  w.Key("engine_iterations").Number(t.engine_iterations);
  w.Key("fleet_events").Number(t.fleet_events);
  w.Key("sim_seconds").Number(t.sim_seconds);
  w.Key("wall_seconds").Number(t.wall_seconds);
  w.Key("events_per_sec").Number(t.events_per_sec);
  w.Key("sim_seconds_per_wall_second").Number(t.sim_seconds_per_wall_second);
  w.Key("wall_seconds_per_sim_hour").Number(t.wall_seconds_per_sim_hour);
  w.EndObject();
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags = ParseCliFlags(argc, argv);
  std::size_t count = flags.quick ? 100'000 : 1'000'000;
  for (std::size_t i = 0; i < flags.positional.size(); ++i) {
    const std::string& arg = flags.positional[i];
    if (arg == "--requests" && i + 1 < flags.positional.size()) {
      count = std::strtoull(flags.positional[++i].c_str(), nullptr, 10);
    } else if (arg.rfind("--requests=", 0) == 0) {
      count = std::strtoull(arg.c_str() + 11, nullptr, 10);
    }
  }
  const std::uint64_t seed = flags.seed_set ? flags.seed : 1;

  std::printf("generating %zu-request trace (seed %llu)...\n", count,
              static_cast<unsigned long long>(seed));
  const auto trace = ShortPromptMix(count, seed);

  obs::MaybeEnableProfiler(flags);

  Table table(Format("Simulator throughput, %zu requests", count));
  table.SetHeader({"fleet", "events", "engine iters", "fleet events", "sim s",
                   "wall s", "events/s", "wall s / sim h"});

  std::printf("running unified x6...\n");
  const FleetStats unified = RunUnified(trace);
  AddRow(table, "unified_x6", unified);
  std::printf("running 2P:4D disagg...\n");
  const FleetStats disagg = RunDisagg(trace);
  AddRow(table, "disagg_2p4d", disagg);
  table.Print();

  if (!obs::WriteProfile(flags)) return 1;

  if (!flags.json_out.empty()) {
    JsonWriter w;
    w.BeginObject();
    w.Key("bench").String("sim_throughput");
    w.Key("quick").Bool(flags.quick);
    w.Key("requests").Number(static_cast<std::uint64_t>(count));
    w.Key("seed").Number(seed);
    w.Key("fleets").BeginArray();
    WriteFleetJson(w, "unified_x6", unified);
    WriteFleetJson(w, "disagg_2p4d", disagg);
    w.EndArray();
    w.EndObject();
    std::string json = w.TakeString();
    json.push_back('\n');
    if (!JsonSyntaxValid(json)) {
      std::fprintf(stderr, "FAILED: emitted invalid JSON\n");
      return 1;
    }
    std::FILE* f = std::fopen(flags.json_out.c_str(), "w");
    if (f == nullptr ||
        std::fwrite(json.data(), 1, json.size(), f) != json.size()) {
      if (f != nullptr) std::fclose(f);
      std::fprintf(stderr, "FAILED to write %s\n", flags.json_out.c_str());
      return 1;
    }
    std::fclose(f);
    std::printf("wrote bench summary: %s\n", flags.json_out.c_str());
  }

  bool ok = true;
  for (const auto* s : {&unified, &disagg}) {
    if (!Conserved(*s) || s->completed == 0 ||
        s->sim_throughput.events_processed == 0) {
      ok = false;
    }
  }
  std::printf("sim throughput soak: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
