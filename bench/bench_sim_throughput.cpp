// Simulator-throughput benchmark: how fast does the simulator itself run?
// Replays a large generated trace of short-prompt requests (1M requests by
// default, 100k with --quick) through two fleets — 6 unified replicas, and a
// 2P:4D disaggregated split over an NVLink-class link (the busiest code
// path: routing, chunked prefill, handoff planning, KV migration, decode) —
// and reports the host-side cost: events processed (engine iterations +
// fleet events), events/sec, sim-seconds per wall-second, and wall-seconds
// per simulated hour.
//
// With the parallel cluster runtime this is also the thread-scaling
// benchmark: by default the unified fleet sweeps 1/2/4/8 worker threads (the
// disagg fleet runs at 1 and 4), every sweep point replaying the SAME trace.
// The parallel runtime's contract is oracle parity — identical simulated
// results at every thread count — so the deterministic counters double as a
// cross-thread-count equivalence check here, and the JSON artifact gains a
// report-only `thread_scaling` section (events/sec and speedup per point)
// for trend-watching.  `--threads N` skips the sweep and runs both fleets at
// one thread count.
//
// The JSON artifact is the unit CI's bench-regression tracking consumes:
// `bench/compare_baselines.py` checks the deterministic counters
// (events_processed, completed, ...) exactly and reports — without gating —
// the wall-clock rates, so a change that silently makes the simulator do
// more work per request fails the build even on noisy CI hosts.
//
// Exit status is nonzero if any fleet breaks request conservation
// (completed + dropped + rejected + lost != submitted + retried), processes
// zero events, or disagrees with the single-threaded oracle on any
// deterministic counter — so the bench doubles as a large-trace soak test
// for the parallel runtime.
//
// `--check-speedup` is the CI perf gate: the unified ×6 scenario must hit
// >= 2x events/sec at 4 threads over 1 thread.  Exit status carries the
// verdict; hosts with fewer than 4 hardware threads skip cleanly (exit 0),
// mirroring how the AVX2 GEMM gate skips where AVX2 is absent.
//
// Usage: bench_sim_throughput [--quick] [--seed N] [--requests N]
//                             [--threads N] [--check-speedup]
//                             [--json-out PATH] [--profile-out BASE]
//   --quick replays 100k requests (CI-sized); the default is 1M.
//   --requests N overrides both.  --profile-out enables the wall-clock
//   profiler for the runs and writes BASE.txt/.csv/.folded/... on exit.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "obs/prof/prof_sink.hpp"
#include "util/cli_flags.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace liquid;
using namespace liquid::cluster;

namespace {

ReplicaSpec Replica(ReplicaRole role) {
  ReplicaSpec spec;
  spec.hw = simgpu::HardwareSpec::H800();
  spec.preset = serving::SystemPreset::LiquidServe();
  spec.model = serving::LlmConfig::Llama2_7B();
  spec.kv_pool_blocks = 4096;
  spec.block_tokens = 16;
  spec.max_batch = 16;
  spec.role = role;
  if (role == ReplicaRole::kPrefill) {
    spec.options.prefill_chunk_tokens = 2048;
  }
  spec.dollars_per_hour = role == ReplicaRole::kPrefill ? 2.8 : 2.2;
  return spec;
}

/// Short-prompt interactive mix: per-request work is small, so the request
/// count (not prompt length) dominates and the fleet-event machinery —
/// routing, admission, retirement — gets exercised at volume.
std::vector<serving::TimedRequest> ShortPromptMix(std::size_t count,
                                                  std::uint64_t seed) {
  serving::TraceConfig config;
  config.arrival_rate_per_s = 120.0;
  config.count = count;
  config.prompt_min = 128;
  config.prompt_max = 1024;
  config.output_min = 16;
  config.output_max = 64;
  config.sessions = 256;
  return serving::GenerateTrace(config, seed);
}

FleetStats RunUnified(const std::vector<serving::TimedRequest>& trace,
                      std::size_t threads) {
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding);
  sim.SetThreads(threads);
  for (int i = 0; i < 6; ++i) sim.AddReplica(Replica(ReplicaRole::kUnified));
  return sim.Run(trace);
}

FleetStats RunDisagg(const std::vector<serving::TimedRequest>& trace,
                     std::size_t threads) {
  DisaggConfig disagg;
  disagg.interconnect.bandwidth_gb_per_s = 400.0;
  disagg.max_migration_seconds = 0.25;
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, {}, {}, {}, disagg);
  sim.SetThreads(threads);
  for (int i = 0; i < 2; ++i) sim.AddReplica(Replica(ReplicaRole::kPrefill));
  for (int i = 0; i < 4; ++i) sim.AddReplica(Replica(ReplicaRole::kDecode));
  return sim.Run(trace);
}

bool Conserved(const FleetStats& s) {
  return s.completed + s.dropped + s.rejected_requests + s.lost_requests ==
         s.submitted + s.retried_requests;
}

/// Oracle parity: every deterministic counter the bench reports must match
/// the single-threaded run of the same fleet on the same trace.
bool MatchesOracle(const FleetStats& s, const FleetStats& oracle) {
  return s.submitted == oracle.submitted && s.completed == oracle.completed &&
         s.dropped == oracle.dropped &&
         s.rejected_requests == oracle.rejected_requests &&
         s.lost_requests == oracle.lost_requests &&
         s.retried_requests == oracle.retried_requests &&
         s.sim_throughput.events_processed ==
             oracle.sim_throughput.events_processed &&
         s.sim_throughput.engine_iterations ==
             oracle.sim_throughput.engine_iterations &&
         s.sim_throughput.fleet_events == oracle.sim_throughput.fleet_events &&
         s.sim_throughput.sim_seconds == oracle.sim_throughput.sim_seconds;
}

struct SweepPoint {
  std::string name;   ///< fleet + thread count, e.g. "unified_x6_t4"
  std::size_t threads = 1;
  FleetStats stats;
};

void AddRow(Table& table, const SweepPoint& point, double base_events_per_sec) {
  const SimThroughput& t = point.stats.sim_throughput;
  const double speedup =
      base_events_per_sec > 0 ? t.events_per_sec / base_events_per_sec : 0;
  table.AddRow({point.name, std::to_string(point.threads),
                WithCommas(t.events_processed),
                Format("%.1f", t.sim_seconds), Format("%.3f", t.wall_seconds),
                WithCommas(static_cast<std::uint64_t>(t.events_per_sec)),
                Format("%.2fx", speedup),
                Format("%.3f", t.wall_seconds_per_sim_hour)});
}

void WriteFleetJson(JsonWriter& w, const SweepPoint& point) {
  const FleetStats& s = point.stats;
  const SimThroughput& t = s.sim_throughput;
  w.BeginObject();
  w.Key("name").String(point.name);
  w.Key("threads").Number(static_cast<std::uint64_t>(point.threads));
  w.Key("submitted").Number(static_cast<std::uint64_t>(s.submitted));
  w.Key("completed").Number(static_cast<std::uint64_t>(s.completed));
  w.Key("events_processed").Number(t.events_processed);
  w.Key("engine_iterations").Number(t.engine_iterations);
  w.Key("fleet_events").Number(t.fleet_events);
  w.Key("sim_seconds").Number(t.sim_seconds);
  w.Key("wall_seconds").Number(t.wall_seconds);
  w.Key("events_per_sec").Number(t.events_per_sec);
  w.Key("sim_seconds_per_wall_second").Number(t.sim_seconds_per_wall_second);
  w.Key("wall_seconds_per_sim_hour").Number(t.wall_seconds_per_sim_hour);
  w.EndObject();
}

/// CI perf gate: unified ×6 must reach >= 2x events/sec at 4 threads over
/// 1 thread.  Also re-asserts oracle parity on the pair it just ran.  Skips
/// (exit 0) on hosts with fewer than 4 hardware threads, where the target is
/// physically unreachable — the gate is for CI runners, not laptops in
/// power-save mode.
int CheckSpeedup(const std::vector<serving::TimedRequest>& trace) {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 4) {
    std::printf(
        "parallel speedup gate: SKIPPED (host has %u hardware threads, "
        "need >= 4)\n",
        hw);
    return 0;
  }
  std::printf("running unified x6 at 1 thread (oracle)...\n");
  const FleetStats serial = RunUnified(trace, 1);
  std::printf("running unified x6 at 4 threads...\n");
  const FleetStats parallel = RunUnified(trace, 4);
  const double base = serial.sim_throughput.events_per_sec;
  const double speedup =
      base > 0 ? parallel.sim_throughput.events_per_sec / base : 0;
  const bool parity = MatchesOracle(parallel, serial);
  std::printf(
      "parallel speedup gate: %.0f ev/s (1t) -> %.0f ev/s (4t) = %.2fx "
      "(need >= 2.00x), oracle parity %s\n",
      base, parallel.sim_throughput.events_per_sec, speedup,
      parity ? "OK" : "BROKEN");
  const bool ok = speedup >= 2.0 && parity;
  std::printf("parallel speedup gate: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags = ParseCliFlags(argc, argv);
  std::size_t count = flags.quick ? 100'000 : 1'000'000;
  bool check_speedup = false;
  for (std::size_t i = 0; i < flags.positional.size(); ++i) {
    const std::string& arg = flags.positional[i];
    if (arg == "--requests" && i + 1 < flags.positional.size()) {
      count = std::strtoull(flags.positional[++i].c_str(), nullptr, 10);
    } else if (arg.rfind("--requests=", 0) == 0) {
      count = std::strtoull(arg.c_str() + 11, nullptr, 10);
    } else if (arg == "--check-speedup") {
      check_speedup = true;
    }
  }
  const std::uint64_t seed = flags.seed_set ? flags.seed : 1;

  std::printf("generating %zu-request trace (seed %llu)...\n", count,
              static_cast<unsigned long long>(seed));
  const auto trace = ShortPromptMix(count, seed);

  obs::MaybeEnableProfiler(flags);

  if (check_speedup) return CheckSpeedup(trace);

  // --threads N: both fleets once at that count.  Default: thread sweep —
  // unified at 1/2/4/8, disagg at 1/4 — all over the same trace.
  std::vector<std::pair<const char*, std::size_t>> unified_points;
  std::vector<std::pair<const char*, std::size_t>> disagg_points;
  if (flags.threads_set) {
    unified_points = {{"unified_x6", flags.threads}};
    disagg_points = {{"disagg_2p4d", flags.threads}};
  } else {
    unified_points = {{"unified_x6_t1", 1},
                      {"unified_x6_t2", 2},
                      {"unified_x6_t4", 4},
                      {"unified_x6_t8", 8}};
    disagg_points = {{"disagg_2p4d_t1", 1}, {"disagg_2p4d_t4", 4}};
  }

  std::vector<SweepPoint> points;
  for (const auto& [name, threads] : unified_points) {
    std::printf("running %s (%zu thread%s)...\n", name, threads,
                threads == 1 ? "" : "s");
    points.push_back({name, threads, RunUnified(trace, threads)});
  }
  const std::size_t disagg_begin = points.size();
  for (const auto& [name, threads] : disagg_points) {
    std::printf("running %s (%zu thread%s)...\n", name, threads,
                threads == 1 ? "" : "s");
    points.push_back({name, threads, RunDisagg(trace, threads)});
  }

  Table table(Format("Simulator throughput, %zu requests", count));
  table.SetHeader({"fleet", "threads", "events", "sim s", "wall s", "events/s",
                   "speedup", "wall s / sim h"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    // Speedup is relative to the same fleet's first (single-threaded) point.
    const std::size_t base = i < disagg_begin ? 0 : disagg_begin;
    AddRow(table, points[i],
           points[base].stats.sim_throughput.events_per_sec);
  }
  table.Print();

  if (!obs::WriteProfile(flags)) return 1;

  if (!flags.json_out.empty()) {
    JsonWriter w;
    w.BeginObject();
    w.Key("bench").String("sim_throughput");
    w.Key("quick").Bool(flags.quick);
    w.Key("requests").Number(static_cast<std::uint64_t>(count));
    w.Key("seed").Number(seed);
    w.Key("fleets").BeginArray();
    for (const SweepPoint& point : points) WriteFleetJson(w, point);
    w.EndArray();
    // Report-only thread-scaling trend (wall-clock; never gated): events/sec
    // and speedup-vs-1-thread per sweep point.
    w.Key("thread_scaling").BeginArray();
    for (std::size_t i = 0; i < points.size(); ++i) {
      const std::size_t base = i < disagg_begin ? 0 : disagg_begin;
      const double base_rate =
          points[base].stats.sim_throughput.events_per_sec;
      const SimThroughput& t = points[i].stats.sim_throughput;
      w.BeginObject();
      w.Key("name").String(points[i].name);
      w.Key("threads").Number(static_cast<std::uint64_t>(points[i].threads));
      w.Key("events_per_sec").Number(t.events_per_sec);
      w.Key("speedup_vs_1_thread")
          .Number(base_rate > 0 ? t.events_per_sec / base_rate : 0);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    std::string json = w.TakeString();
    json.push_back('\n');
    if (!JsonSyntaxValid(json)) {
      std::fprintf(stderr, "FAILED: emitted invalid JSON\n");
      return 1;
    }
    std::FILE* f = std::fopen(flags.json_out.c_str(), "w");
    if (f == nullptr ||
        std::fwrite(json.data(), 1, json.size(), f) != json.size()) {
      if (f != nullptr) std::fclose(f);
      std::fprintf(stderr, "FAILED to write %s\n", flags.json_out.c_str());
      return 1;
    }
    std::fclose(f);
    std::printf("wrote bench summary: %s\n", flags.json_out.c_str());
  }

  // Soak gate: conservation and nonzero work everywhere, plus oracle parity
  // for every multi-threaded point against its fleet's single-threaded run.
  bool ok = true;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const FleetStats& s = points[i].stats;
    if (!Conserved(s) || s.completed == 0 ||
        s.sim_throughput.events_processed == 0) {
      std::printf("FAIL: %s broke conservation or did no work\n",
                  points[i].name.c_str());
      ok = false;
    }
    const std::size_t base = i < disagg_begin ? 0 : disagg_begin;
    if (i != base && points[base].threads == 1 &&
        !MatchesOracle(s, points[base].stats)) {
      std::printf("FAIL: %s diverged from the single-threaded oracle\n",
                  points[i].name.c_str());
      ok = false;
    }
  }
  std::printf("sim throughput soak: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
