// Figure 12 reproduction: isolated GEMM-kernel latency on the FFN + projection
// GEMMs of a single transformer layer — LLaMA2-7B/13B/70B and Mixtral-8x7B,
// batch 4..256, all six kernels under the unified framework.
//
// Shapes to verify (paper Section 7.3): at batch 256 LiquidGEMM is
// 2.75x/2.87x/2.90x faster than QServe on LLaMA2-7B/13B/70B; on Mixtral it
// trails the GEMV-specialized TRT kernels below batch 32 and wins 1.41-1.84x
// over TRT-FP8 / 1.12-2.53x over TRT-W4A16 beyond it.

#include <cstdio>

#include "bench_common.hpp"
#include "serving/model_config.hpp"

using namespace liquid;
using namespace liquid::bench;

namespace {

void PrintModel(const serving::LlmConfig& model) {
  Table t(Format("Figure 12 — single-layer GEMM latency (us), %s",
                 model.name.c_str()));
  std::vector<std::string> header{"batch"};
  for (const auto k : Figure12Kernels()) header.push_back(simgpu::ToString(k));
  header.push_back("QServe/Liquid");
  t.SetHeader(header);
  for (const std::size_t m : BatchSweep()) {
    std::vector<std::string> row{std::to_string(m)};
    double qserve = 0;
    double liquid = 0;
    for (const auto k : Figure12Kernels()) {
      const double s = LayerGemmSeconds(model, k, m);
      if (k == simgpu::KernelKind::kQServeW4A8) qserve = s;
      if (k == simgpu::KernelKind::kLiquidW4A8) liquid = s;
      row.push_back(Us(s));
    }
    row.push_back(Format("%.2fx", qserve / liquid));
    t.AddRow(row);
  }
  t.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "Reproduction of Figure 12: GEMM kernels isolated from the serving\n"
      "stack.  LiquidGEMM keeps the 4-bit memory-bound advantage at small\n"
      "batch AND sustains W8A8-class throughput at large batch, where\n"
      "QServe degrades to ~2-3x slower.\n\n");
  PrintModel(serving::LlmConfig::Llama2_7B());
  PrintModel(serving::LlmConfig::Llama2_13B());
  PrintModel(serving::LlmConfig::Llama2_70B());
  PrintModel(serving::LlmConfig::Mixtral_8x7B());
  return 0;
}
