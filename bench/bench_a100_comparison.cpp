// Cross-hardware study (Figure 1a's two parts): the same kernels on A100 vs
// H800.  Two paper points made quantitative:
//   1. W4A4 is only realizable on A100 (Hopper dropped INT4 tensor cores) —
//      and even there, accuracy concerns aside, its kernel ceiling is just
//      2x W4A8's compute bound while sharing the same memory bound.
//   2. Hopper's tensor cores grew 3.2x over A100 but bandwidth only 1.65x,
//      so the dequantization budget alpha (Section 3.3) barely moves: the
//      hardware keeps getting less forgiving of slow dequantization.

#include <cstdio>

#include "core/dequant/dequant.hpp"
#include "model/cost_model.hpp"
#include "simgpu/gemm_sim.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace liquid;
using namespace liquid::model;

int main() {
  const HardwareSpec a100 = simgpu::HardwareSpec::A100();
  const HardwareSpec h800 = simgpu::HardwareSpec::H800();

  {
    Table t("Dequantization budget across generations (alpha, instr/element)");
    t.SetHeader({"hardware", "alpha budget (mem-bound)", "LQQ alpha",
                 "headroom"});
    for (const auto* hw : {&a100, &h800}) {
      const double budget =
          AlphaBudgetMemoryBound(*hw, PrecisionConfig::W4A8(*hw, 0));
      t.AddRow({hw->name, Format("%.2f", budget),
                Format("%.3f", MeasureAlphaLqq()),
                Format("%.1fx", budget / MeasureAlphaLqq())});
    }
    t.Print();
  }

  {
    // Simulated LiquidGEMM and QServe-style kernels on both parts.
    Table t("LLaMA2-7B FFN GEMM latency (us), N=11008 K=4096");
    t.SetHeader({"batch", "A100 LiquidGEMM", "A100 QServe", "H800 LiquidGEMM",
                 "H800 QServe", "H800/A100 (Liquid)"});
    const auto liquid_cfg =
        simgpu::KernelConfig::For(simgpu::KernelKind::kLiquidW4A8);
    const auto qserve_cfg =
        simgpu::KernelConfig::For(simgpu::KernelKind::kQServeW4A8);
    for (const std::size_t m : {8u, 64u, 256u}) {
      const GemmShape shape{m, 11008, 4096};
      const double al = simgpu::SimulateGemm(a100, liquid_cfg, shape).seconds;
      const double aq = simgpu::SimulateGemm(a100, qserve_cfg, shape).seconds;
      const double hl = simgpu::SimulateGemm(h800, liquid_cfg, shape).seconds;
      const double hq = simgpu::SimulateGemm(h800, qserve_cfg, shape).seconds;
      t.AddRow({std::to_string(m), Format("%.1f", al * 1e6),
                Format("%.1f", aq * 1e6), Format("%.1f", hl * 1e6),
                Format("%.1f", hq * 1e6), Format("%.2fx", al / hl)});
    }
    t.Print();
  }

  {
    Table t("W4A4 vs W4A8 ceilings (cost model)");
    t.SetHeader({"hardware", "W4A8 transition batch", "W4A4 transition batch",
                 "W4A4 feasible"});
    for (const auto* hw : {&a100, &h800}) {
      const auto w4a8 = PrecisionConfig::W4A8(*hw, 0);
      const auto w4a4 = PrecisionConfig::W4A4(*hw);
      t.AddRow({hw->name, Format("%.0f", TransitionBatchSize(*hw, w4a8)),
                w4a4.mma_ops > 0
                    ? Format("%.0f", TransitionBatchSize(*hw, w4a4))
                    : std::string("-"),
                w4a4.mma_ops > 0 ? "yes" : "no (no INT4 tensor cores)"});
    }
    t.Print();
  }
  return 0;
}
