// Role-typed, cost-aware autoscaling study on burst→idle traces — the
// regime the arrival-driven autoscaler handled worst (it only ever ran when
// a request arrived, so after the burst the peak fleet burned $/hour across
// the whole idle tail).
//
// Sweep: a kilotoken-prompt burst that loads the README's best fixed
// 2P:4D disaggregated split, followed by a sparse keep-alive trickle over
// an idle tail of varying length.  For each tail length the fixed split is
// compared against the same fleet under role-typed autoscaling pools
// (prefill pool on queue depth, decode pool on free-KV pressure) with the
// cost-aware shrink objective and the periodic event-pump tick: the burst
// is served at full size, then the tail is served at the pool floors.
//
// Exit status is nonzero unless the autoscaled fleet strictly lowers
// $/1M tokens versus the fixed split at equal-or-better p99 TPOT on every
// tail length, so the bench doubles as a regression check.
//
// Usage: bench_autoscale [--quick] [--seed N] [--trace-out PATH]
//                        [--metrics-out PATH] [--json-out PATH]
//   --quick writes CI-sized sweeps; the telemetry/JSON sinks capture the
//   first tail's autoscaled run (see util/cli_flags.hpp for the full list).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "obs/prof/prof_sink.hpp"
#include "obs/telemetry_sink.hpp"
#include "util/cli_flags.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace liquid;
using namespace liquid::cluster;

namespace {

constexpr double kPrefillDollarsPerHour = 2.8;
constexpr double kDecodeDollarsPerHour = 2.2;

ReplicaSpec Replica(ReplicaRole role) {
  ReplicaSpec spec;
  spec.hw = simgpu::HardwareSpec::H800();
  spec.preset = serving::SystemPreset::LiquidServe();
  spec.model = serving::LlmConfig::Llama2_7B();
  spec.kv_pool_blocks = 4096;
  spec.block_tokens = 16;
  spec.max_batch = 16;
  spec.role = role;
  if (role == ReplicaRole::kPrefill) {
    spec.options.prefill_chunk_tokens = 2048;
  }
  spec.dollars_per_hour = role == ReplicaRole::kPrefill
                              ? kPrefillDollarsPerHour
                              : kDecodeDollarsPerHour;
  return spec;
}

/// A kilotoken burst (same mix bench_disagg sizes the 2P:4D split on), then
/// a sparse keep-alive trickle across `tail_seconds` of idle.
std::vector<serving::TimedRequest> BurstIdleTrace(std::size_t burst_count,
                                                  double tail_seconds,
                                                  std::uint64_t seed) {
  serving::TraceConfig burst;
  burst.arrival_rate_per_s = 28.0;
  burst.count = burst_count;
  burst.prompt_min = 2048;
  burst.prompt_max = 8192;
  burst.output_min = 32;
  burst.output_max = 128;
  burst.sessions = 32;
  std::vector<serving::TimedRequest> trace =
      serving::GenerateTrace(burst, seed);
  const double burst_end = trace.back().arrival_seconds;

  serving::TraceConfig tail;
  tail.arrival_rate_per_s = 0.1;  // one keep-alive request every ~10 s
  tail.count = static_cast<std::size_t>(tail_seconds / 10.0);
  tail.prompt_min = 256;
  tail.prompt_max = 1024;
  tail.output_min = 32;
  tail.output_max = 64;
  tail.sessions = 4;
  for (serving::TimedRequest r : serving::GenerateTrace(tail, seed ^ 0x7A11)) {
    r.id += 1000000;
    r.session += 1000000;
    r.arrival_seconds += burst_end + 5.0;
    trace.push_back(r);
  }
  return trace;
}

/// --threads: worker count for every fleet in this bench (results are
/// identical to the serial oracle by the parallel runtime's contract).
std::size_t g_threads = 1;

FleetStats RunFixed(const std::vector<serving::TimedRequest>& trace) {
  DisaggConfig disagg;
  disagg.interconnect.bandwidth_gb_per_s = 400.0;
  disagg.max_migration_seconds = 0.25;
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, {}, {}, {}, disagg);
  sim.SetThreads(g_threads);
  for (int i = 0; i < 2; ++i) sim.AddReplica(Replica(ReplicaRole::kPrefill));
  for (int i = 0; i < 4; ++i) sim.AddReplica(Replica(ReplicaRole::kDecode));
  return sim.Run(trace);
}

FleetStats RunAutoscaled(const std::vector<serving::TimedRequest>& trace,
                         obs::TraceRecorder* recorder = nullptr,
                         obs::MetricsRegistry* metrics = nullptr) {
  AutoscaleConfig autoscale;
  autoscale.enabled = true;
  autoscale.cooldown_seconds = 2.0;
  autoscale.tick_seconds = 0.5;  // the event-pump tick covers the tail
  autoscale.cost_aware = true;   // the pricier pool shrinks first
  // k8s-style downscale stabilization: 3 s of continuously low readings
  // before any shrink, so mid-burst queue dips don't flap.
  autoscale.shrink_stable_seconds = 3.0;

  AutoscalePool prefill_pool;
  prefill_pool.role = ReplicaRole::kPrefill;
  prefill_pool.spec = Replica(ReplicaRole::kPrefill);
  prefill_pool.signal = AutoscaleSignal::kQueueDepth;
  prefill_pool.high = 12.0;
  prefill_pool.low = 0.5;
  prefill_pool.min_replicas = 1;
  prefill_pool.max_replicas = 3;

  AutoscalePool decode_pool;
  decode_pool.role = ReplicaRole::kDecode;
  decode_pool.spec = Replica(ReplicaRole::kDecode);
  decode_pool.signal = AutoscaleSignal::kFreeKv;  // KV pressure, role-typed
  decode_pool.high = 0.85;
  decode_pool.low = 0.05;
  decode_pool.min_replicas = 1;
  decode_pool.max_replicas = 6;

  autoscale.pools = {prefill_pool, decode_pool};

  DisaggConfig disagg;
  disagg.interconnect.bandwidth_gb_per_s = 400.0;
  disagg.max_migration_seconds = 0.25;
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, autoscale, {}, {},
                       disagg);
  sim.SetThreads(g_threads);
  for (int i = 0; i < 2; ++i) sim.AddReplica(Replica(ReplicaRole::kPrefill));
  for (int i = 0; i < 4; ++i) sim.AddReplica(Replica(ReplicaRole::kDecode));
  sim.AttachTelemetry(recorder, metrics);
  return sim.Run(trace);
}

void AddRow(Table& table, const std::string& label, const FleetStats& s) {
  table.AddRow({label, HumanTime(s.ttft.p99), HumanTime(s.tpot.p50),
                HumanTime(s.tpot.p99), std::to_string(s.completed),
                Format("%zu/%zu", s.scale_ups, s.scale_downs),
                std::to_string(s.replicas_final),
                Format("$%.4f", s.cost_dollars),
                Format("$%.2f", s.dollars_per_m_tokens)});
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags = ParseCliFlags(argc, argv);
  obs::MaybeEnableProfiler(flags);
  g_threads = flags.threads;
  const bool quick = flags.quick;
  const std::uint64_t seed = flags.seed_set ? flags.seed : 2026;
  const std::size_t burst = quick ? 100 : 240;
  std::vector<double> tails = quick ? std::vector<double>{120.0}
                                    : std::vector<double>{60.0, 120.0, 240.0};
  obs::TraceRecorder recorder;
  obs::MetricsRegistry metrics;
  const bool telemetry =
      flags.WantsTrace() || flags.WantsMetrics() || !flags.json_out.empty();

  Table table(Format(
      "Burst→idle sweep: fixed 2P:4D vs role-typed cost-aware autoscale "
      "(%zu-request kilotoken burst)",
      burst));
  table.SetHeader({"fleet", "p99 TTFT", "p50 TPOT", "p99 TPOT", "done",
                   "up/down", "final", "$fleet", "$/1Mtok"});

  bool all_win = true;
  double best_cut = 0;
  bool first_tail = true;
  for (const double tail : tails) {
    const auto trace = BurstIdleTrace(burst, tail, seed);
    const FleetStats fixed = RunFixed(trace);
    // The telemetry sinks capture the first tail's autoscaled run.
    const FleetStats autoscaled =
        RunAutoscaled(trace, telemetry && first_tail ? &recorder : nullptr,
                      telemetry && first_tail ? &metrics : nullptr);
    if (telemetry && first_tail && !flags.json_out.empty()) {
      if (WriteFleetStatsJson(autoscaled, flags.json_out)) {
        std::printf("wrote fleet stats: %s\n", flags.json_out.c_str());
      } else {
        std::fprintf(stderr, "FAILED to write %s\n", flags.json_out.c_str());
        return 1;
      }
    }
    first_tail = false;
    AddRow(table, Format("fixed 2P:4D, %.0fs tail", tail), fixed);
    AddRow(table, Format("autoscaled,  %.0fs tail", tail), autoscaled);

    const bool cheaper =
        autoscaled.dollars_per_m_tokens < fixed.dollars_per_m_tokens;
    const bool tpot_ok = autoscaled.tpot.p99 <= fixed.tpot.p99;
    all_win = all_win && cheaper && tpot_ok;
    if (cheaper && fixed.dollars_per_m_tokens > 0) {
      best_cut = std::max(
          best_cut, 1.0 - autoscaled.dollars_per_m_tokens /
                              fixed.dollars_per_m_tokens);
    }
    std::printf(
        "tail %5.0fs: $/1Mtok %s$%.2f -> $%.2f%s, p99 TPOT %s -> %s (%s)\n",
        tail, cheaper ? "" : "!", fixed.dollars_per_m_tokens,
        autoscaled.dollars_per_m_tokens, cheaper ? "" : "!",
        HumanTime(fixed.tpot.p99).c_str(),
        HumanTime(autoscaled.tpot.p99).c_str(),
        tpot_ok ? "equal-or-better" : "WORSE");
  }
  std::printf("\n");
  table.Print();

  std::printf("\nrole-typed + cost-aware autoscaling %s the fixed 2P:4D "
              "split (best $/1Mtok cut: %.0f%%)\n",
              all_win ? "beats" : "FAILED to beat", 100.0 * best_cut);
  if (!obs::WriteProfile(flags)) return 1;
  if (!obs::WriteTelemetry(flags, recorder, metrics)) return 1;
  return all_win ? 0 : 1;
}
