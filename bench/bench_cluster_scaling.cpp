// Fleet scaling study, two sweeps:
//
//  (1) Throughput vs. replica count at a fixed offered load: how close the
//      cluster gets to linear scaling, and where queueing latency collapses
//      once capacity exceeds the offered rate.
//
//  (2) Router-policy shootout on a skewed-prompt-length trace (log-uniform
//      64..4096 prompt tokens against tight KV pools): queue depth is a poor
//      proxy for KV pressure when a few huge prompts pin a replica's pool,
//      so least-KV-load routing should beat round-robin on p99 TTFT.

#include <cstdio>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace liquid;
using namespace liquid::cluster;

namespace {

ReplicaSpec Replica() {
  ReplicaSpec spec;
  spec.hw = simgpu::HardwareSpec::H800();
  spec.preset = serving::SystemPreset::LiquidServe();
  spec.model = serving::LlmConfig::Llama2_7B();
  spec.kv_pool_blocks = 512;  // 8192 KV tokens: one huge prompt can pin most
                              // of a pool, which is what the shootout probes
  spec.block_tokens = 16;
  spec.max_batch = 64;
  return spec;
}

std::vector<serving::TimedRequest> SkewedTrace(std::size_t count,
                                               std::uint64_t seed) {
  serving::TraceConfig config;
  config.arrival_rate_per_s = 40.0;
  config.count = count;
  config.prompt_min = 64;
  config.prompt_max = 6144;  // log-uniform: a heavy tail of huge prompts
  config.output_min = 16;
  config.output_max = 128;
  config.sessions = 24;
  return serving::GenerateTrace(config, seed);
}

FleetStats RunFleet(RoutePolicy policy, std::size_t replicas,
                    const std::vector<serving::TimedRequest>& trace) {
  ClusterSimulator sim(policy);
  for (std::size_t i = 0; i < replicas; ++i) sim.AddReplica(Replica());
  return sim.Run(trace);
}

}  // namespace

int main() {
  const auto trace = SkewedTrace(/*count=*/300, /*seed=*/77);

  Table scaling("Throughput vs. replicas (least_kv, 300-request skewed trace)");
  scaling.SetHeader({"replicas", "tok/s", "p50 TTFT", "p99 TTFT", "p99 e2e",
                     "preempt", "dropped"});
  for (const std::size_t n : {1u, 2u, 4u, 8u}) {
    const FleetStats s = RunFleet(RoutePolicy::kLeastKvLoad, n, trace);
    scaling.AddRow({std::to_string(n),
                    WithCommas(static_cast<long long>(
                        s.throughput_tokens_per_s)),
                    HumanTime(s.ttft.p50), HumanTime(s.ttft.p99),
                    HumanTime(s.e2e.p99), std::to_string(s.preemptions),
                    std::to_string(s.dropped)});
  }
  scaling.Print();
  std::printf("\n");

  Table shootout("Router policies, 4 replicas, skewed prompt lengths");
  shootout.SetHeader({"policy", "p50 TTFT", "p99 TTFT", "p99 e2e", "tok/s",
                      "preempt", "dropped"});
  double rr_p99 = 0, kv_p99 = 0;
  for (const RoutePolicy policy :
       {RoutePolicy::kRoundRobin, RoutePolicy::kLeastOutstanding,
        RoutePolicy::kLeastKvLoad, RoutePolicy::kSessionAffinity}) {
    const FleetStats s = RunFleet(policy, 4, trace);
    if (policy == RoutePolicy::kRoundRobin) rr_p99 = s.ttft.p99;
    if (policy == RoutePolicy::kLeastKvLoad) kv_p99 = s.ttft.p99;
    shootout.AddRow({ToString(policy), HumanTime(s.ttft.p50),
                     HumanTime(s.ttft.p99), HumanTime(s.e2e.p99),
                     WithCommas(static_cast<long long>(
                         s.throughput_tokens_per_s)),
                     std::to_string(s.preemptions),
                     std::to_string(s.dropped)});
  }
  shootout.Print();
  std::printf("\nleast_kv p99 TTFT %s vs round_robin %s: %s\n",
              HumanTime(kv_p99).c_str(), HumanTime(rr_p99).c_str(),
              kv_p99 < rr_p99 ? "WIN" : "LOSS");
  return 0;
}
