#pragma once
// Shared helpers for the paper-reproduction bench binaries.

#include <cstdio>
#include <string>
#include <vector>

#include "serving/engine.hpp"
#include "simgpu/gemm_sim.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace liquid::bench {

inline const simgpu::HardwareSpec& H800() {
  static const simgpu::HardwareSpec hw = simgpu::HardwareSpec::H800();
  return hw;
}

/// The paper's batch sweep: 2^2 .. 2^8.
inline std::vector<std::size_t> BatchSweep() {
  return {4, 8, 16, 32, 64, 128, 256};
}

/// Kernel list of Figures 5/12 (TRT precisions + QServe + LiquidGEMM).
inline std::vector<simgpu::KernelKind> Figure12Kernels() {
  return {simgpu::KernelKind::kTrtFp16,  simgpu::KernelKind::kTrtW8A8,
          simgpu::KernelKind::kTrtFp8,   simgpu::KernelKind::kTrtW4A16,
          simgpu::KernelKind::kQServeW4A8, simgpu::KernelKind::kLiquidW4A8};
}

/// Latency of one transformer layer's GEMM chain (fused QKV + O + FFN) for a
/// model at a batch size, under a given kernel.
inline double LayerGemmSeconds(const serving::LlmConfig& model,
                               simgpu::KernelKind kind, std::size_t batch) {
  const auto cfg = simgpu::KernelConfig::For(kind);
  return simgpu::SimulateGemmSequence(H800(), cfg, model.LayerGemms(batch));
}

inline std::string Us(double seconds) {
  return Format("%.1f", seconds * 1e6);
}

}  // namespace liquid::bench
