// Chaos/SLO study, two sweeps:
//
//  (1) Admission-control shootout under a 2x-overload trace with one mid-run
//      replica kill: unbounded queueing vs. a sweep of TTFT budgets.  The
//      claim to verify: shedding load bounds p99 TTFT (the backlog no longer
//      compounds after the kill), trading completed requests for latency.
//
//  (2) Autoscale-signal shootout on the same chaotic trace: instantaneous
//      queue depth vs. windowed p99 TTFT as the scale trigger.
//
// Exit status is nonzero if SLO admission control fails to bound p99 TTFT
// versus unbounded queueing, so the bench doubles as a regression check.
//
// Usage: bench_chaos_slo [--quick] [--seed N] [--trace-out PATH]
//                        [--metrics-out PATH] [--json-out PATH]
//   --quick runs a smaller trace for CI smoke; the telemetry/JSON sinks
//   capture the TTFT-window autoscaled run — the one exercising kills,
//   retries, scale-ups, and admission all at once (see util/cli_flags.hpp).

#include <cstdio>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "obs/prof/prof_sink.hpp"
#include "obs/telemetry_sink.hpp"
#include "util/cli_flags.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace liquid;
using namespace liquid::cluster;

namespace {

ReplicaSpec Replica() {
  ReplicaSpec spec;
  spec.hw = simgpu::HardwareSpec::H800();
  spec.preset = serving::SystemPreset::LiquidServe();
  spec.model = serving::LlmConfig::Llama2_7B();
  spec.kv_pool_blocks = 512;
  spec.block_tokens = 16;
  spec.max_batch = 16;
  spec.dollars_per_hour = 2.5;  // priced so shedding shows up in $/1M tokens
  return spec;
}

std::vector<serving::TimedRequest> OverloadTrace(std::size_t count,
                                                 std::uint64_t seed) {
  serving::TraceConfig config;
  config.arrival_rate_per_s = 110.0;  // ~2x what 3 replicas retire
  config.count = count;
  config.prompt_min = 256;
  config.prompt_max = 2048;
  config.output_min = 64;
  config.output_max = 256;
  config.sessions = 24;
  return serving::GenerateTrace(config, seed);
}

/// --threads: every fleet in this bench runs with this many workers (the
/// parallel runtime's results are identical to the serial oracle, so the
/// tables and goldens don't change with it).
std::size_t g_threads = 1;

FleetStats RunChaos(const std::vector<serving::TimedRequest>& trace,
                    SloConfig slo, AutoscaleConfig autoscale = {},
                    obs::TraceRecorder* recorder = nullptr,
                    obs::MetricsRegistry* metrics = nullptr) {
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, autoscale, slo);
  sim.SetThreads(g_threads);
  for (int i = 0; i < 3; ++i) sim.AddReplica(Replica());
  sim.ScheduleKill({trace[trace.size() / 2].arrival_seconds, /*replica=*/1});
  sim.AttachTelemetry(recorder, metrics);
  return sim.Run(trace);
}

void AddChaosRow(Table& table, const char* label, const FleetStats& s) {
  table.AddRow({label, HumanTime(s.ttft.p50), HumanTime(s.ttft.p99),
                HumanTime(s.e2e.p99), std::to_string(s.completed),
                std::to_string(s.rejected_requests),
                std::to_string(s.lost_requests),
                WithCommas(static_cast<long long>(s.wasted_tokens)),
                Format("$%.2f", s.dollars_per_m_tokens)});
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags = ParseCliFlags(argc, argv);
  obs::MaybeEnableProfiler(flags);
  g_threads = flags.threads;
  const auto trace = OverloadTrace(flags.quick ? 200 : 300,
                                   flags.seed_set ? flags.seed : 99);
  obs::TraceRecorder recorder;
  obs::MetricsRegistry metrics;
  const bool telemetry =
      flags.WantsTrace() || flags.WantsMetrics() || !flags.json_out.empty();

  Table shootout(
      "SLO admission control, 3 replicas, 2x overload, 1 mid-run kill");
  shootout.SetHeader({"admission", "p50 TTFT", "p99 TTFT", "p99 e2e",
                      "completed", "rejected", "lost", "wasted tok", "$/1Mtok"});
  const FleetStats open = RunChaos(trace, SloConfig{});
  AddChaosRow(shootout, "unbounded", open);
  FleetStats best_slo;
  const double budgets[] = {4.0, 2.0, 1.0};
  for (const double budget : budgets) {
    const FleetStats s = RunChaos(trace, SloConfig{budget, 1.0});
    if (budget == 2.0) best_slo = s;
    static char label[32];
    std::snprintf(label, sizeof label, "budget %.0fs", budget);
    AddChaosRow(shootout, label, s);
  }
  shootout.Print();
  std::printf("\n");

  Table signals("Autoscale signal under the same chaos (max 6 replicas)");
  signals.SetHeader({"signal", "p50 TTFT", "p99 TTFT", "p99 e2e", "completed",
                     "rejected", "lost", "wasted tok", "$/1Mtok"});
  AutoscaleConfig queue;
  queue.enabled = true;
  queue.signal = AutoscaleSignal::kQueueDepth;
  queue.queue_high = 6.0;
  queue.queue_low = 0.25;
  queue.max_replicas = 6;
  queue.cooldown_seconds = 0.5;
  AutoscaleConfig tail = queue;
  tail.signal = AutoscaleSignal::kTailTtft;
  tail.ttft_p99_high = 1.0;
  tail.ttft_p99_low = 0.02;
  tail.window_seconds = 5.0;
  AddChaosRow(signals, "none", open);
  const FleetStats by_queue = RunChaos(trace, SloConfig{}, queue);
  AddChaosRow(signals, "queue depth", by_queue);
  // The telemetry sinks capture the TTFT-window run: kill + retries +
  // scale-ups in one trace.
  const FleetStats by_tail =
      RunChaos(trace, SloConfig{}, tail, telemetry ? &recorder : nullptr,
               telemetry ? &metrics : nullptr);
  AddChaosRow(signals, "p99 TTFT window", by_tail);
  if (telemetry && !flags.json_out.empty()) {
    if (WriteFleetStatsJson(by_tail, flags.json_out)) {
      std::printf("wrote fleet stats: %s\n", flags.json_out.c_str());
    } else {
      std::fprintf(stderr, "FAILED to write %s\n", flags.json_out.c_str());
      return 1;
    }
  }
  signals.Print();
  std::printf("scale-ups: queue=%zu tail=%zu\n", by_queue.scale_ups,
              by_tail.scale_ups);

  const bool bounded = best_slo.ttft.p99 < open.ttft.p99;
  std::printf("\nSLO (2s budget) p99 TTFT %s vs unbounded %s: %s\n",
              HumanTime(best_slo.ttft.p99).c_str(),
              HumanTime(open.ttft.p99).c_str(), bounded ? "WIN" : "LOSS");
  if (!obs::WriteProfile(flags)) return 1;
  if (!obs::WriteTelemetry(flags, recorder, metrics)) return 1;
  return bounded ? 0 : 1;
}
