// Figure 4 reproduction: fraction of end-to-end decode time spent in GEMM /
// Attention / Others for LLaMA2-7B (W8A8 system) and Mixtral-8x7B (FP8
// system), input lengths 128 and 1024, batch sizes 4..256.
//
// Shapes to verify: GEMM dominates at small batch, attention grows with both
// batch and sequence length, and on the MoE model GEMM remains the primary
// contributor at every batch size (each expert runs its own GEMMs).

#include <cstdio>

#include "bench_common.hpp"

using namespace liquid;
using namespace liquid::bench;

namespace {

void PrintModel(const serving::LlmConfig& model,
                const serving::SystemPreset& preset, std::size_t input_len) {
  serving::ServingEngine engine(H800(), preset, model);
  Table t(Format("Figure 4 — decode time fractions, %s via %s, input len %zu",
                 model.name.c_str(), preset.name.c_str(), input_len));
  t.SetHeader({"batch", "GEMM", "Attention", "Others", "GEMM us/layer"});
  for (const std::size_t b : BatchSweep()) {
    // The paper omits the 1024-length batch-256 bar (OOM on 80 GB).
    if (input_len == 1024 && b == 256 &&
        engine.MemoryBytes({input_len, 128, b}) > 80e9) {
      t.AddRow({std::to_string(b), "OOM", "OOM", "OOM", "-"});
      continue;
    }
    const std::size_t kv_len = input_len + 64;  // mid-generation
    const auto layer = engine.DecodeLayerBreakdown(b, kv_len);
    const double total = layer.total();
    t.AddRow({std::to_string(b), Format("%.2f", layer.gemm / total),
              Format("%.2f", layer.attention / total),
              Format("%.2f", layer.others / total), Us(layer.gemm)});
  }
  t.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "Reproduction of Figure 4: time breakdown of inference (GEMM share of\n"
      "one decode step).  GEMM dominates at small batch; attention takes\n"
      "over at large batch and long sequences on the dense model, while the\n"
      "MoE model stays GEMM-dominated throughout.\n\n");
  const auto w8a8 = serving::SystemPreset::TrtW8A8();
  const auto fp8 = serving::SystemPreset::TrtFp8();
  PrintModel(serving::LlmConfig::Llama2_7B(), w8a8, 128);
  PrintModel(serving::LlmConfig::Llama2_7B(), w8a8, 1024);
  PrintModel(serving::LlmConfig::Mixtral_8x7B(), fp8, 128);
  PrintModel(serving::LlmConfig::Mixtral_8x7B(), fp8, 1024);
  return 0;
}
