// Figure 10 reproduction: GEMM / Attention / Others time for one decoding
// layer of LLaMA2-7B, LLaMA2-70B, LLaMA3-8B and Mistral-7B, with each system
// evaluated at its own Table-1 peak batch size.
//
// Shapes to verify: LiquidServe's GEMM latency is on par with or better than
// every baseline (paper: 1.90x faster than QServe on LLaMA2-7B, slightly
// behind TRT-W8A8 on 70B only because it runs a much larger batch).

#include <cstdio>

#include "bench_common.hpp"
#include "serving/system_preset.hpp"

using namespace liquid;
using namespace liquid::bench;
using serving::LlmConfig;
using serving::ServingEngine;
using serving::SystemPreset;

namespace {

void PrintModel(const LlmConfig& model) {
  Table t(Format("Figure 10 — one decoding layer breakdown (us), %s",
                 model.name.c_str()));
  t.SetHeader({"system", "batch", "GEMM", "Attention", "Others", "total"});
  for (const auto& preset : SystemPreset::PaperSystems()) {
    const ServingEngine engine(H800(), preset, model);
    const auto peak = engine.PeakThroughput(1024, 512);
    if (!peak.supported) {
      t.AddRow({preset.name, "NA", "-", "-", "-", "-"});
      continue;
    }
    if (peak.oom) {
      t.AddRow({preset.name, "OOM", "-", "-", "-", "-"});
      continue;
    }
    const auto layer = engine.DecodeLayerBreakdown(peak.batch, 1024 + 256);
    t.AddRow({preset.name, std::to_string(peak.batch), Us(layer.gemm),
              Us(layer.attention), Us(layer.others), Us(layer.total())});
  }
  t.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "Reproduction of Figure 10: per-layer decode breakdown at each\n"
      "system's peak batch size (larger batches do more work per step, so\n"
      "compare GEMM latency in the context of the batch column).\n\n");
  PrintModel(LlmConfig::Llama2_7B());
  PrintModel(LlmConfig::Llama2_70B());
  PrintModel(LlmConfig::Llama3_8B());
  PrintModel(LlmConfig::Mistral_7B());
  return 0;
}
