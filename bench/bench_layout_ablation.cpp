// Section 5.2 ablation: the dual-MMA packed layout against the conventional
// 2D UINT4 layout and ldmatrix, through the shared-memory transaction model.
// Quantifies the three claims: fewer load instructions, no wasted bandwidth,
// no bank conflicts — and shows ldmatrix is functionally unusable on UINT4.

#include <cstdio>

#include "core/layout/smem_model.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace liquid;

int main() {
  const SmemAccessReport dual = DualMmaTileLoadCost();
  const SmemAccessReport conv = ConventionalTileLoadCost();

  Table t("Section 5.2 — loading one 64x64 UINT4 supertile from SMEM (per warp group)");
  t.SetHeader({"layout", "load instr", "SMEM cycles", "conflict factor",
               "bytes loaded", "bytes used", "BW efficiency"});
  t.AddRow({"dual-MMA packed (LDS.128)", std::to_string(dual.instructions),
            std::to_string(dual.memory_cycles),
            Format("%.2fx", dual.ConflictFactor()),
            std::to_string(dual.bytes_loaded),
            std::to_string(dual.bytes_used),
            Format("%.0f%%", 100 * dual.BandwidthEfficiency())});
  t.AddRow({"conventional 2D (LDS.32)", std::to_string(conv.instructions),
            std::to_string(conv.memory_cycles),
            Format("%.2fx", conv.ConflictFactor()),
            std::to_string(conv.bytes_loaded),
            std::to_string(conv.bytes_used),
            Format("%.0f%%", 100 * conv.BandwidthEfficiency())});
  t.Print();

  std::printf(
      "\nldmatrix on packed UINT4 delivers %.0f%% of elements to the wrong\n"
      "thread (Figure 7a) — it is not merely slower, it is incorrect.\n\n"
      "Net effect: %.1fx fewer SMEM cycles and %dx fewer load instructions\n"
      "for the dual-MMA packed layout, plus zero per-load address\n"
      "arithmetic (thread address = base + tid*16).\n",
      100.0 * LdmatrixMisdeliveryFraction(),
      static_cast<double>(conv.memory_cycles) / dual.memory_cycles,
      conv.instructions / dual.instructions);
  return 0;
}
