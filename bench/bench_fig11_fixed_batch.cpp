// Figure 11 reproduction: token-generation throughput of every system at
// *fixed* batch sizes 16 (memory-bound) and 128 (near compute-bound) on
// LLaMA2-7B and LLaMA2-70B; missing bars are OOM.
//
// Shape to verify: LiquidServe leads at both batch sizes on both models.

#include <cstdio>

#include "bench_common.hpp"
#include "serving/system_preset.hpp"

using namespace liquid;
using namespace liquid::bench;
using serving::LlmConfig;
using serving::ServingEngine;
using serving::SystemPreset;

namespace {

void PrintModel(const LlmConfig& model) {
  Table t(Format("Figure 11 — throughput (tokens/s) at fixed batch, %s",
                 model.name.c_str()));
  t.SetHeader({"system", "batch 16", "batch 128"});
  for (const auto& preset : SystemPreset::PaperSystems()) {
    std::vector<std::string> row{preset.name};
    const ServingEngine engine(H800(), preset, model);
    for (const std::size_t b : {16u, 128u}) {
      const auto r = engine.Run({1024, 512, b});
      if (!r.supported) {
        row.push_back("NA");
      } else if (r.oom) {
        row.push_back("OOM");
      } else {
        row.push_back(
            WithCommas(static_cast<long long>(r.tokens_per_second)));
      }
    }
    t.AddRow(row);
  }
  t.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "Reproduction of Figure 11: same-batch comparison removes the batch-\n"
      "size advantage from low-bit KV caches, isolating kernel efficiency.\n\n");
  PrintModel(LlmConfig::Llama2_7B());
  PrintModel(LlmConfig::Llama2_70B());
  return 0;
}
