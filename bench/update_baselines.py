#!/usr/bin/env python3
"""Refresh the committed bench baselines from a directory of fresh --quick
artifacts (the files a local Release run or the CI "bench-summaries"
artifact produces).

Usage:
    update_baselines.py ARTIFACT_DIR

Copies every known quick-bench JSON found in ARTIFACT_DIR into
bench/baselines/ (pretty-printed with sorted keys so diffs stay readable)
and reports what changed.  Commit the result together with the change that
legitimately moved the numbers — see bench/README.md for the workflow.
"""

import json
import os
import sys

KNOWN_ARTIFACTS = (
    "bench_disagg_quick.json",
    "bench_prefix_routing_quick.json",
    "bench_autoscale_quick.json",
    "bench_chaos_slo_quick.json",
    "bench_sim_throughput_quick.json",
)


def main(argv):
    if len(argv) != 1 or not os.path.isdir(argv[0]):
        print(__doc__, file=sys.stderr)
        return 2
    src_dir = argv[0]
    dst_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "baselines")
    os.makedirs(dst_dir, exist_ok=True)

    updated, missing = [], []
    for name in KNOWN_ARTIFACTS:
        src = os.path.join(src_dir, name)
        if not os.path.isfile(src):
            missing.append(name)
            continue
        with open(src) as f:
            data = json.load(f)
        dst = os.path.join(dst_dir, name)
        body = json.dumps(data, indent=1, sort_keys=True) + "\n"
        changed = not os.path.isfile(dst) or open(dst).read() != body
        with open(dst, "w") as f:
            f.write(body)
        updated.append((name, changed))

    for name, changed in updated:
        print(f"{'updated ' if changed else 'unchanged'} baselines/{name}")
    for name in missing:
        print(f"missing  {name} (not in {src_dir}; baseline left as-is)")
    if not updated:
        print("no known artifacts found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
